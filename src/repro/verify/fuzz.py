"""Seeded, replayable fuzzers for the core, the engine, and the protocol.

Every fuzzer derives each case from ``random.Random(f"{seed}:{kind}:{i}")``,
so a failing case replays exactly from its seed and index — the violation
messages carry the case label for that purpose (docs/VERIFY.md describes
the workflow).

* :func:`fuzz_scenarios` — random grids, charging/event schedules, weight
  functions, battery windows, and ``(perf, power, VF)`` models, each run
  through the oracle plus the differential checks.
* :func:`fuzz_engine` — random schedule/cancel/step/run_until op sequences
  against :class:`~repro.verify.runtime.CheckedSimulationEngine`, with an
  external expectation model (every live event due by the horizon fires
  exactly once, in ``(time, seq)`` order; cancelled events never fire).
* :func:`fuzz_protocol` — malformed/truncated/oversized/hostile NDJSON
  frames against a live plan server or fleet gateway address; every frame
  must produce a well-formed response (or a documented connection close),
  and the endpoint must still answer a clean ``ping`` afterwards.
* :func:`corrupt_payload` — seeded single-fault mutations of a valid plan
  payload, used by ``repro verify`` to prove the oracle actually rejects
  corrupted plans.
"""

from __future__ import annotations

import json
import math
import random
import socket
from typing import Mapping

import numpy as np

from ..core.allocation import allocate
from ..core.pareto import OperatingFrontier, build_operating_points
from ..core.wpuf import desired_usage
from ..models.battery import BatterySpec
from ..models.performance import PerformanceModel
from ..models.power import PowerModel
from ..models.voltage import FixedVoltageVFMap, LinearVFMap
from ..service.protocol import ERROR_CODES, MAX_LINE_BYTES, parse_address
from ..util.schedule import Schedule
from ..util.timegrid import TimeGrid
from .differential import (
    check_allocator_vs_brute_force,
    check_continuous_agreement,
    check_discrete_search,
)
from .oracle import (
    CheckSession,
    VerificationReport,
    Violation,
    check_allocation_result,
    check_pareto_frontier,
    check_power_consistency,
    check_wpuf_normalization,
)
from .runtime import CheckedSimulationEngine

__all__ = [
    "fuzz_scenarios",
    "fuzz_engine",
    "fuzz_protocol",
    "corrupt_payload",
]


# ----------------------------------------------------------------------
# scenario fuzzing
# ----------------------------------------------------------------------
def _random_charging(rng: random.Random, grid: TimeGrid) -> Schedule:
    n = grid.n_slots
    peak = rng.uniform(0.5, 5.0)
    kind = rng.randrange(4)
    if kind == 0:  # square wave: sun for a contiguous stretch
        on = rng.randint(1, n)
        start = rng.randrange(n)
        values = [peak if (start <= k < start + on or k < start + on - n) else 0.0 for k in range(n)]
    elif kind == 1:  # staircase
        steps = sorted(rng.uniform(0, peak) for _ in range(n))
        if rng.random() < 0.5:
            steps.reverse()
        values = steps
    elif kind == 2:  # independent uniform
        values = [rng.uniform(0, peak) for _ in range(n)]
    else:  # bursty: mostly dark with a few spikes
        values = [peak * (rng.random() < 0.25) * rng.uniform(0.5, 1.0) for _ in range(n)]
    return Schedule(grid, values)


def _random_events(rng: random.Random, grid: TimeGrid, supply: float) -> Schedule:
    n = grid.n_slots
    values = [rng.uniform(0.0, 1.0) * (rng.random() < 0.85) for _ in range(n)]
    if supply > 0 and max(values) == 0.0:
        values[rng.randrange(n)] = rng.uniform(0.1, 1.0)
    return Schedule(grid, values)


def _random_weight(rng: random.Random, grid: TimeGrid) -> Schedule:
    kind = rng.randrange(3)
    if kind == 0:
        return Schedule.constant(grid, 1.0)
    if kind == 1:
        return Schedule.constant(grid, rng.uniform(0.1, 3.0))
    return Schedule(grid, [rng.uniform(0.1, 3.0) for _ in range(grid.n_slots)])


def _random_models(rng: random.Random):
    """A random ``(n_workers, frequencies, perf, power, count_standby)``."""
    n_workers = rng.randint(2, 8)
    if rng.random() < 0.5:  # the paper's fixed-voltage board
        f_max = rng.uniform(50e6, 200e6)
        vf = FixedVoltageVFMap(rng.uniform(1.0, 3.3), f_max)
        k = rng.randint(2, 4)
        fracs = sorted({rng.uniform(0.15, 1.0) for _ in range(k)} | {1.0})
        frequencies = [f_max * fr for fr in fracs]
        scale_voltage = False
    else:  # first-order DVFS board.  Eq. 18's regime-3 closed form assumes
        # f ∝ v (zero threshold voltage); with v_th > 0 the Eq. 17 crossover
        # shifts and the closed form is legitimately suboptimal, so the
        # differential check would flag a model mismatch, not a bug.
        v_min = rng.uniform(0.6, 1.0)
        vf = LinearVFMap(
            v_min,
            v_min + rng.uniform(0.5, 1.5),
            slope=rng.uniform(50e6, 150e6),
            v_threshold=0.0,
        )
        k = rng.randint(2, 5)
        volts = sorted(rng.uniform(vf.v_min, vf.v_max) for _ in range(k))
        frequencies = sorted({vf.g(v) for v in volts if vf.g(v) > 0})
        if rng.random() < 0.3:  # one below-floor frequency (regime 1 fodder)
            frequencies.insert(0, vf.f_floor * rng.uniform(0.3, 0.9))
        scale_voltage = True
    f_top = max(frequencies)
    v_top = vf.optimal_voltage(f_top)
    target_top_w = rng.uniform(0.05, 0.5)
    c2 = target_top_w / (f_top * v_top**2)
    # Eq. 18's closed form is derived without a per-processor static floor;
    # with voltage scaling a floor shifts the regime-3 crossover, so only
    # fixed-voltage tables get one (where frequency-first stays optimal).
    active_floor = 0.0 if scale_voltage else rng.uniform(0.0, 0.2) * target_top_w
    count_standby = rng.random() < 0.5
    power = PowerModel(
        c2,
        standby_power=rng.uniform(0.0, 0.1) * target_top_w if count_standby else 0.0,
        active_floor=active_floor,
    )
    perf = PerformanceModel(
        t_total=1.0,
        t_serial=rng.uniform(0.02, 0.5),
        f_ref=f_top,
        vf_map=vf,
        c1=1.0,
    )
    return n_workers, frequencies, perf, power, count_standby


def fuzz_scenarios(seed: int = 0, cases: int = 100) -> VerificationReport:
    """Random scenarios through the oracle + differential checks."""
    session = CheckSession()
    for i in range(cases):
        rng = random.Random(f"{seed}:scenario:{i}")
        session.push_context(f"scenario case {seed}:{i}")
        try:
            _fuzz_one_scenario(rng, session)
        finally:
            session.pop_context()
    return session.report()


def _fuzz_one_scenario(rng: random.Random, session: CheckSession) -> None:
    n_slots = rng.randint(4, 12)
    tau = rng.uniform(1.0, 6.0)
    grid = TimeGrid(n_slots * tau, tau)
    charging = _random_charging(rng, grid)
    supply = charging.total_energy()
    events = _random_events(rng, grid, supply)
    weight = _random_weight(rng, grid)
    c_max = rng.uniform(0.2, 2.0) * max(supply, 1.0)
    c_min = rng.uniform(0.0, 0.3) * c_max
    initial = rng.uniform(c_min, c_max) if rng.random() < 0.5 else None
    spec = BatterySpec(c_max=c_max, c_min=c_min, initial=initial)

    # Eqs. 7–8: WPUF normalization
    u_new = desired_usage(events, weight, charging)
    session.run(check_wpuf_normalization, events, weight, charging, u_new)

    # Algorithm 1: reshaping allocator
    result = allocate(charging, u_new, spec)
    session.run(check_allocation_result, charging, result, spec)
    if n_slots <= 6 and rng.random() < 0.4:
        session.run(
            check_allocator_vs_brute_force, charging, u_new, spec, n_levels=4
        )

    # Eq. 6 / Algorithm 2 / Eq. 18: table, frontier, and both solvers
    n_workers, frequencies, perf, power, count_standby = _random_models(rng)
    points = build_operating_points(
        n_workers, frequencies, perf, power, count_standby=count_standby
    )
    frontier = OperatingFrontier.build(
        n_workers, frequencies, perf, power, count_standby=count_standby
    )
    session.run(check_pareto_frontier, frontier)
    session.run(
        check_power_consistency,
        frontier.points,
        power,
        n_total=n_workers if count_standby else None,
    )
    for _ in range(6):
        budget = rng.uniform(0.0, 1.3 * frontier.max_power)
        session.run(check_discrete_search, frontier, points, budget)
        session.run(
            check_continuous_agreement,
            frontier,
            points,
            perf,
            power,
            budget,
            n_max=n_workers,
        )


# ----------------------------------------------------------------------
# engine fuzzing
# ----------------------------------------------------------------------
def fuzz_engine(seed: int = 0, cases: int = 50) -> VerificationReport:
    """Random op sequences against the self-checking simulation engine."""
    session = CheckSession()
    for i in range(cases):
        rng = random.Random(f"{seed}:engine:{i}")
        session.push_context(f"engine case {seed}:{i}")
        try:
            _fuzz_one_engine(rng, session)
        finally:
            session.pop_context()
    return session.report()


def _fuzz_one_engine(rng: random.Random, session: CheckSession) -> None:
    engine = CheckedSimulationEngine()
    handles = []  # every SimEvent we scheduled
    cancelled = set()  # seqs cancel-requested while still pending
    done = set()  # seqs whose callback ran
    limit = rng.randint(8, 60)
    total = [0]

    def schedule(time: float, depth: int) -> None:
        if total[0] >= limit:
            return
        total[0] += 1
        box = {}

        def callback() -> None:
            event = box["event"]
            done.add(event.seq)
            if depth < 2 and rng.random() < 0.3:
                schedule(engine.now + rng.uniform(0.0, 4.0), depth + 1)

        if rng.random() < 0.7:
            event = engine.at(time, callback)
        else:
            event = engine.after(max(0.0, time - engine.now), callback)
        box["event"] = event
        handles.append(event)

    for _ in range(rng.randint(3, 15)):
        schedule(rng.uniform(0.0, 20.0), 0)
    for _ in range(rng.randint(0, 12)):
        roll = rng.random()
        if roll < 0.35 and handles:
            event = rng.choice(handles)
            if event.seq not in done:
                cancelled.add(event.seq)
            engine.cancel(event)
        elif roll < 0.65:
            engine.step()
        else:
            schedule(engine.now + rng.uniform(0.0, 20.0), 0)

    horizon = None
    if rng.random() < 0.5:
        horizon = engine.now + rng.uniform(0.0, 30.0)
        engine.run_until(horizon)
    else:
        engine.run()

    violations = list(engine.violations)
    for event in handles:
        ran = event.seq in done
        due = horizon is None or event.time <= horizon + 1e-12
        if event.seq in cancelled and ran:
            violations.append(
                Violation(
                    "engine_cancelled_ran",
                    f"event seq={event.seq} at t={event.time:.6g} executed "
                    "after being cancelled",
                    slot=event.seq,
                )
            )
        elif event.seq not in cancelled and due and not ran:
            violations.append(
                Violation(
                    "engine_lost_event",
                    f"live event seq={event.seq} at t={event.time:.6g} never "
                    f"executed (horizon {horizon})",
                    slot=event.seq,
                )
            )
        elif not due and ran:
            violations.append(
                Violation(
                    "engine_deadline",
                    f"event seq={event.seq} at t={event.time:.6g} executed "
                    f"past run_until({horizon:.6g})",
                    slot=event.seq,
                    magnitude=event.time - horizon,
                )
            )
    session.add(violations)


# ----------------------------------------------------------------------
# protocol fuzzing
# ----------------------------------------------------------------------
def _hostile_frames(rng: random.Random) -> "tuple[bytes, str, str]":
    """One fuzz frame: ``(payload_bytes, expectation, label)``.

    ``expectation`` is ``"error"`` (a well-formed error response with a
    registered code), ``"ok"`` (a well-formed success), or ``"any"``
    (any well-formed response — used where the outcome legitimately
    depends on server state).
    """
    choice = rng.randrange(12)
    if choice == 0:
        n = rng.randint(1, 64)
        body = bytes(rng.randrange(1, 256) for _ in range(n))
        return body + b"\n", "error", "garbage bytes"
    if choice == 1:
        return b'{"op": "plan", "scenario": "scena\n', "error", "truncated JSON"
    if choice == 2:
        doc = rng.choice([b"[1,2,3]", b'"plan"', b"42", b"null", b"true"])
        return doc + b"\n", "error", "non-object JSON"
    if choice == 3:
        token = rng.choice([b"NaN", b"Infinity", b"-Infinity"])
        return b'{"op": "plan", "supply_factor": ' + token + b"}\n", "error", "non-finite token"
    if choice == 4:
        return (
            json.dumps({"op": rng.choice(["plam", "", "PLAN", "exec", 7])}).encode()
            + b"\n",
            "error",
            "unknown op",
        )
    if choice == 5:
        bad = rng.choice(
            [
                {"op": "plan", "scenario": 7},
                {"op": "plan", "scenario": "scenario1", "n_periods": "two"},
                {"op": "plan", "scenario": "scenario1", "supply_factor": -1.0},
                {"op": "plan", "scenario": "scenario1", "n_periods": 0},
            ]
        )
        return json.dumps(bad).encode() + b"\n", "error", "wrong field types"
    if choice == 6:
        name = "no-such-scenario-" + str(rng.randrange(10**6))
        return (
            json.dumps({"op": "plan", "scenario": name}).encode() + b"\n",
            "error",
            "unknown scenario",
        )
    if choice == 7:
        filler = "x" * (MAX_LINE_BYTES + rng.randint(1, 4096))
        return (
            json.dumps({"op": "ping", "pad": filler}).encode() + b"\n",
            "error",
            "oversized frame",
        )
    if choice == 8:
        return b"\n", "error", "empty line"
    if choice == 9:
        return b"\x00\x00{\x00}\n", "error", "NUL bytes"
    if choice == 10:
        depth = rng.randint(1500, 4000)
        return (
            b'{"op": ' + b"[" * depth + b"]" * depth + b"}\n",
            "error",
            f"nesting depth {depth}",
        )
    return json.dumps({"op": "ping", "id": rng.randrange(10**9)}).encode() + b"\n", "ok", "valid ping"


def _connect(address: str, timeout_s: float) -> socket.socket:
    parsed = parse_address(address)
    if parsed[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s)
        sock.connect(parsed[1])
    else:
        sock = socket.create_connection((parsed[1], parsed[2]), timeout=timeout_s)
        sock.settimeout(timeout_s)
    return sock


def _read_response(fh) -> "dict | None":
    line = fh.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    return json.loads(line)


def fuzz_protocol(
    address: str,
    seed: int = 0,
    cases: int = 50,
    *,
    timeout_s: float = 10.0,
) -> VerificationReport:
    """Hostile NDJSON frames against a live plan-serving endpoint.

    Each case opens a fresh connection, sends one fuzzed frame, and
    demands a well-formed response: a JSON object with ``ok`` and, on
    failure, an ``error.code`` drawn from :data:`ERROR_CODES`.  A
    timeout, a non-JSON reply, or an unregistered code is a violation —
    a dropped connection is only tolerated for frames the server cannot
    parse a request id out of.  A final clean ``ping`` proves the
    endpoint survived the barrage.
    """
    session = CheckSession()
    for i in range(cases):
        rng = random.Random(f"{seed}:protocol:{i}")
        frame, expectation, label = _hostile_frames(rng)
        session.push_context(f"protocol case {seed}:{i} ({label})")
        try:
            session.add(
                _fuzz_one_frame(address, frame, expectation, timeout_s)
            )
        finally:
            session.pop_context()
    session.push_context("protocol liveness")
    try:
        session.add(_fuzz_one_frame(address, b'{"op":"ping","id":0}\n', "ok", timeout_s))
    finally:
        session.pop_context()
    return session.report()


def _fuzz_one_frame(
    address: str, frame: bytes, expectation: str, timeout_s: float
) -> list[Violation]:
    try:
        sock = _connect(address, timeout_s)
    except OSError as exc:
        return [
            Violation(
                "protocol_connect",
                f"could not connect to {address}: {exc}",
            )
        ]
    try:
        sock.sendall(frame)
        fh = sock.makefile("rb")
        try:
            response = _read_response(fh)
        except socket.timeout:
            return [
                Violation(
                    "protocol_timeout",
                    f"no response within {timeout_s}s to a "
                    f"{len(frame)}-byte frame",
                )
            ]
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return [
                Violation(
                    "protocol_malformed_response",
                    f"response is not a JSON line: {exc}",
                )
            ]
    except OSError as exc:
        return [
            Violation(
                "protocol_transport",
                f"transport error mid-exchange: {exc}",
            )
        ]
    finally:
        try:
            sock.close()
        except OSError:
            pass
    if response is None:
        return [
            Violation(
                "protocol_closed",
                "server closed the connection without responding",
            )
        ]
    out: list[Violation] = []
    if not isinstance(response, dict) or "ok" not in response:
        return [
            Violation(
                "protocol_malformed_response",
                f"response lacks the ok envelope: {response!r}",
            )
        ]
    if expectation == "ok" and response.get("ok") is not True:
        out.append(
            Violation(
                "protocol_wrong_verdict",
                f"valid request rejected: {response!r}",
            )
        )
    if expectation == "error":
        if response.get("ok") is not False:
            out.append(
                Violation(
                    "protocol_wrong_verdict",
                    f"malformed request accepted: {response!r}",
                )
            )
        else:
            code = (response.get("error") or {}).get("code")
            if code not in ERROR_CODES:
                out.append(
                    Violation(
                        "protocol_unknown_error_code",
                        f"error code {code!r} not in the registered set",
                    )
                )
    return out


# ----------------------------------------------------------------------
# payload corruption (seeded faults for the oracle's own acceptance test)
# ----------------------------------------------------------------------
def corrupt_payload(payload: Mapping, rng: random.Random) -> "tuple[dict, str]":
    """One seeded single-fault mutation of a valid plan payload.

    Returns ``(mutated_copy, description)``.  Used by ``repro verify`` to
    prove the oracle catches each fault class (a corruption the oracle
    misses is itself reported as a violation).
    """
    mutated = dict(payload)
    fault = rng.randrange(6)
    if fault == 0:
        mutated["wasted"] = -abs(float(mutated.get("wasted", 0.0))) - 1.0
        return mutated, "negative wasted energy"
    if fault == 1:
        digest = str(mutated.get("digest", ""))
        flipped = ("0" if digest[:1] != "0" else "1") + digest[1:]
        mutated["digest"] = flipped
        return mutated, "corrupted content digest"
    if fault == 2:
        allocated = mutated.get("allocated_power")
        if isinstance(allocated, list) and allocated:
            allocated = list(allocated)
            k = rng.randrange(len(allocated))
            allocated[k] = 1e9
            mutated["allocated_power"] = allocated
            return mutated, f"allocated_power[{k}] inflated past the frontier"
        mutated["utilization"] = math.inf
        return mutated, "non-finite utilization"
    if fault == 3:
        mutated["undersupplied"] = float("nan")
        return mutated, "NaN undersupplied energy"
    if fault == 4:
        mutated["n_periods"] = "2"
        return mutated, "n_periods retyped to a string"
    mutated["supply_factor"] = float(mutated.get("supply_factor", 1.0)) + 0.125
    return mutated, "supply_factor drifted from the digested request"
