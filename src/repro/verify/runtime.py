"""Opt-in runtime check mode: the oracle wired into live components.

Two integration points:

* :class:`CheckedSimulationEngine` — a drop-in
  :class:`~repro.sim.engine.SimulationEngine` that audits its own event
  ordering as it runs (monotone clock, FIFO among equal timestamps,
  cancellation bookkeeping, ``run_until`` deadline discipline).  The
  engine fuzzer (:func:`repro.verify.fuzz.fuzz_engine`) drives random op
  sequences through it.
* :class:`RuntimeVerifier` — the hook :class:`~repro.service.server.PlanServer`
  runs every freshly computed plan payload through when its config sets
  ``verify=True``.  Violations are counted into the existing metrics
  registry (``verify_plans_checked`` / ``verify_violations``) and exposed
  in the ``status`` load section; serving is never blocked — a violating
  plan is still returned, loudly.
"""

from __future__ import annotations

import logging
from typing import Mapping

from ..sim.engine import SimulationEngine
from .oracle import Violation, check_plan_payload

__all__ = ["CheckedSimulationEngine", "RuntimeVerifier"]

logger = logging.getLogger("repro.verify")


class CheckedSimulationEngine(SimulationEngine):
    """Simulation engine that audits its own event-ordering invariants.

    Violations accumulate on :attr:`violations` instead of raising, so a
    fuzzer can keep driving the engine after a defect and report every
    consequence of it.
    """

    def __init__(self, start_time: float = 0.0):
        super().__init__(start_time)
        self.violations: list[Violation] = []
        self.checks = 0
        self._last_executed: "tuple[float, int] | None" = None

    # ------------------------------------------------------------------
    def _audit_sets(self) -> None:
        self.checks += 1
        if not self._cancelled <= self._queued:
            self.violations.append(
                Violation(
                    "engine_bookkeeping",
                    f"{len(self._cancelled - self._queued)} cancelled seq(s) "
                    "not present in the queued set",
                )
            )
        if len(self._queued) != len(self._queue):
            self.violations.append(
                Violation(
                    "engine_bookkeeping",
                    f"queued-set size {len(self._queued)} != heap size "
                    f"{len(self._queue)}",
                )
            )

    def step(self) -> bool:
        self._audit_sets()
        self._discard_cancelled_head()
        head = self._queue[0] if self._queue else None
        before = self._now
        ran = super().step()
        self.checks += 1
        if ran:
            time, seq, _ = head
            if seq in self._cancelled:
                self.violations.append(
                    Violation(
                        "engine_cancelled_ran",
                        f"cancelled event seq={seq} at t={time:.6g} executed",
                        slot=seq,
                    )
                )
            if time < before - 1e-12:
                self.violations.append(
                    Violation(
                        "engine_clock_monotone",
                        f"executed event at t={time:.6g} while the clock was "
                        f"already at {before:.6g}",
                        magnitude=before - time,
                    )
                )
            if self._last_executed is not None and (time, seq) < self._last_executed:
                self.violations.append(
                    Violation(
                        "engine_fifo_order",
                        f"event (t={time:.6g}, seq={seq}) executed after "
                        f"(t={self._last_executed[0]:.6g}, "
                        f"seq={self._last_executed[1]}) — (time, seq) order "
                        "broken",
                    )
                )
            self._last_executed = (time, seq)
        return ran

    def run_until(self, t_end: float) -> None:
        super().run_until(t_end)
        self.checks += 1
        if self._last_executed is not None and self._last_executed[0] > t_end + 1e-12:
            self.violations.append(
                Violation(
                    "engine_deadline",
                    f"run_until({t_end:.6g}) executed an event at "
                    f"t={self._last_executed[0]:.6g}",
                    magnitude=self._last_executed[0] - t_end,
                )
            )
        if self._now < t_end - 1e-12:
            self.violations.append(
                Violation(
                    "engine_clock_advance",
                    f"run_until({t_end:.6g}) left the clock at {self._now:.6g}",
                    magnitude=t_end - self._now,
                )
            )


class RuntimeVerifier:
    """Per-payload oracle hook for the plan server's check mode.

    Thread-safety: counters are bumped from executor callbacks; plain int
    increments under CPython's GIL are adequate here because the values
    feed monitoring, not control flow.
    """

    def __init__(self, *, frontier=None, metrics=None):
        self._frontier = frontier
        self._metrics = metrics
        self.plans_checked = 0
        self.violation_count = 0
        self.last_violation: "Violation | None" = None

    def check_payload(self, payload: Mapping) -> list[Violation]:
        """Run the payload oracle; count, log, and return what it found."""
        violations = check_plan_payload(payload, frontier=self._frontier)
        self.plans_checked += 1
        if self._metrics is not None:
            self._metrics.inc("verify_plans_checked")
        if violations:
            self.violation_count += len(violations)
            self.last_violation = violations[-1]
            if self._metrics is not None:
                self._metrics.inc("verify_violations", len(violations))
            for v in violations:
                logger.warning(
                    "plan verification failed digest=%s %s",
                    payload.get("digest"),
                    v,
                )
        return violations

    def snapshot(self) -> dict:
        """The ``status`` load-section entry for check mode."""
        return {
            "enabled": True,
            "plans_checked": self.plans_checked,
            "violations": self.violation_count,
        }
