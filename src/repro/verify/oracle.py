"""Pure invariant checks over finished plans and runs (the paper's contracts).

Every check is a pure function from finished artifacts to a list of
:class:`Violation` records — no I/O, no randomness, no mutation — so the
same oracle can run inside tests, the ``repro verify`` CLI, and the plan
server's opt-in check mode (:mod:`repro.verify.runtime`).

Checks and the paper equations they enforce:

=========================  =============================================
:func:`check_battery_bounds`     Eq. 10 — trajectory within ``[C_min, C_max]``
:func:`check_energy_balance`     Eq. 8 — ``∫u_new = ∫c`` over one period
:func:`check_wpuf_normalization` Eqs. 7–8 — ``u_new`` is a non-negative,
                                 order-preserving rescale of ``u·w``
:func:`check_power_consistency`  Eq. 6 — every point's power is
                                 ``c2·n·f·v²`` plus the configured floors
:func:`check_pareto_frontier`    Algorithm 2 lines 3–5 — frontier sorted,
                                 strictly improving, dominance-free
:func:`check_allocation_result`  Algorithm 1 — trajectory/flag consistency
:func:`check_energy_run`         Table 1 accounting — conservation, bounds
:func:`check_plan_payload`       service layer — field shape + digest
=========================  =============================================

Violations carry the offending slot and a magnitude (how far past the
bound) so callers can log, count, or fail hard on them.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..analysis.energy import EnergyRunResult
from ..core.allocation import AllocationResult
from ..core.pareto import OperatingFrontier, OperatingPoint
from ..core.surplus import battery_trajectory, check_trajectory
from ..core.wpuf import weighted_power_usage
from ..models.battery import BatterySpec
from ..models.power import PowerModel
from ..util.schedule import Schedule

__all__ = [
    "Violation",
    "VerificationReport",
    "CheckSession",
    "check_battery_bounds",
    "check_energy_balance",
    "check_wpuf_normalization",
    "check_power_consistency",
    "check_pareto_frontier",
    "check_allocation_result",
    "check_energy_run",
    "check_plan_payload",
    "verify_scenario",
]

#: Default absolute tolerance for energy/power comparisons (J or W).
DEFAULT_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, tied to the paper equation it violates."""

    invariant: str  #: machine-readable key, e.g. ``"battery_bounds"``
    message: str  #: human-readable description with the numbers
    equation: "str | None" = None  #: paper reference, e.g. ``"Eq. 10"``
    slot: "int | None" = None  #: offending slot index, when slot-local
    magnitude: float = 0.0  #: how far past the bound (J, W, or ratio)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" slot={self.slot}" if self.slot is not None else ""
        eq = f" [{self.equation}]" if self.equation else ""
        return f"{self.invariant}{eq}{where}: {self.message}"


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a batch of checks: counts plus every violation found."""

    checks_run: int
    violations: tuple[Violation, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def __add__(self, other: "VerificationReport") -> "VerificationReport":
        return VerificationReport(
            self.checks_run + other.checks_run,
            self.violations + other.violations,
        )

    def as_dict(self) -> dict:
        """JSON-ready form (what ``repro verify --json`` writes)."""
        return {
            "ok": self.ok,
            "checks_run": self.checks_run,
            "n_violations": len(self.violations),
            "violations": [asdict(v) for v in self.violations],
        }

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.checks_run} checks: {verdict}"


class CheckSession:
    """Accumulates check calls into one :class:`VerificationReport`.

    ``context`` strings pushed by callers are prefixed onto violation
    messages so a fuzz case or scenario name survives aggregation.
    """

    def __init__(self) -> None:
        self.checks_run = 0
        self.violations: list[Violation] = []
        self._context: list[str] = []

    def push_context(self, label: str) -> None:
        self._context.append(label)

    def pop_context(self) -> None:
        self._context.pop()

    def add(self, violations: Iterable[Violation]) -> list[Violation]:
        """Record pre-computed violations (counted as one check)."""
        found = list(violations)
        self.checks_run += 1
        prefix = " / ".join(self._context)
        if prefix:
            found = [
                Violation(
                    v.invariant,
                    f"[{prefix}] {v.message}",
                    v.equation,
                    v.slot,
                    v.magnitude,
                )
                for v in found
            ]
        self.violations.extend(found)
        return found

    def run(self, check: Callable[..., list[Violation]], *args, **kwargs) -> list[Violation]:
        """Invoke one check function and fold its violations in."""
        return self.add(check(*args, **kwargs))

    def report(self) -> VerificationReport:
        return VerificationReport(self.checks_run, tuple(self.violations))


# ----------------------------------------------------------------------
# core invariants (Eqs. 6, 8, 10)
# ----------------------------------------------------------------------
def check_battery_bounds(
    trajectory: "np.ndarray | Sequence[float]",
    spec: BatterySpec,
    *,
    tol: float = DEFAULT_TOL,
) -> list[Violation]:
    """Eq. 10: every trajectory sample within ``[C_min − tol, C_max + tol]``."""
    traj = np.asarray(trajectory, dtype=float)
    out: list[Violation] = []
    for k, level in enumerate(traj):
        if not math.isfinite(level):
            out.append(
                Violation(
                    "battery_bounds",
                    f"non-finite battery level {level!r}",
                    equation="Eq. 10",
                    slot=k,
                    magnitude=math.inf,
                )
            )
        elif level < spec.c_min - tol:
            out.append(
                Violation(
                    "battery_bounds",
                    f"level {level:.6g} J below C_min={spec.c_min:.6g} J",
                    equation="Eq. 10",
                    slot=k,
                    magnitude=spec.c_min - level,
                )
            )
        elif level > spec.c_max + tol:
            out.append(
                Violation(
                    "battery_bounds",
                    f"level {level:.6g} J above C_max={spec.c_max:.6g} J",
                    equation="Eq. 10",
                    slot=k,
                    magnitude=level - spec.c_max,
                )
            )
    return out


def check_energy_balance(
    charging: Schedule,
    usage: Schedule,
    *,
    tol: float = DEFAULT_TOL,
) -> list[Violation]:
    """Eq. 8: the plan's period energy equals the supplied period energy."""
    supply = charging.total_energy()
    demand = usage.total_energy()
    bound = max(tol, tol * abs(supply))
    gap = demand - supply
    if abs(gap) > bound:
        return [
            Violation(
                "energy_balance",
                f"plan draws {demand:.6g} J but the source supplies "
                f"{supply:.6g} J over the period (gap {gap:+.6g} J)",
                equation="Eq. 8",
                magnitude=abs(gap),
            )
        ]
    return []


def check_wpuf_normalization(
    event_rate: Schedule,
    weight: Schedule,
    charging: Schedule,
    usage: Schedule,
    *,
    tol: float = 1e-9,
) -> list[Violation]:
    """Eqs. 7–8: ``u_new`` must be the WPUF scaled by ``∫c/∫(u·w)``.

    Three sub-invariants: non-negativity, pointwise proportionality to
    ``u(t)·w(t)``, and order preservation (the normalization is monotone —
    a slot that demanded more than another still draws more after it).
    """
    out: list[Violation] = []
    wpuf = weighted_power_usage(event_rate, weight)
    u = usage.values
    for k, value in enumerate(u):
        if value < -tol:
            out.append(
                Violation(
                    "wpuf_nonnegative",
                    f"normalized usage {value:.6g} W is negative",
                    equation="Eq. 8",
                    slot=k,
                    magnitude=-value,
                )
            )
    shape_energy = wpuf.total_energy()
    supply = charging.total_energy()
    if shape_energy > 0:
        scale = supply / shape_energy
        expected = wpuf.values * scale
        ref = max(1.0, float(np.max(np.abs(expected))))
        for k in range(u.size):
            gap = abs(u[k] - expected[k])
            if gap > tol * ref:
                out.append(
                    Violation(
                        "wpuf_normalization",
                        f"usage {u[k]:.6g} W != WPUF·(∫c/∫wu) = "
                        f"{expected[k]:.6g} W",
                        equation="Eq. 8",
                        slot=k,
                        magnitude=gap,
                    )
                )
        # Order preservation follows from proportionality with scale >= 0,
        # but check it independently: it is the property downstream slot
        # decisions rely on, and it localizes the break to a slot pair.
        order = np.argsort(wpuf.values, kind="stable")
        scaled = u[order]
        for i in range(1, scaled.size):
            if scaled[i] < scaled[i - 1] - tol * ref:
                out.append(
                    Violation(
                        "wpuf_monotone",
                        "normalization reordered demand: slot "
                        f"{int(order[i])} (WPUF {wpuf.values[order[i]]:.6g}) "
                        f"draws {scaled[i]:.6g} W < slot {int(order[i - 1])} "
                        f"draws {scaled[i - 1]:.6g} W",
                        equation="Eq. 8",
                        slot=int(order[i]),
                        magnitude=float(scaled[i - 1] - scaled[i]),
                    )
                )
    return out


def check_power_consistency(
    points: "Iterable[OperatingPoint]",
    power_model: PowerModel,
    *,
    n_total: "int | None" = None,
    baseline_power: float = 0.0,
    tol: float = 1e-9,
) -> list[Violation]:
    """Eq. 6: each point's power is ``c2·n·f·v²`` plus configured floors.

    ``n_total`` is the pool size when stand-by floors are counted (as
    :func:`repro.core.pareto.build_operating_points` does with
    ``count_standby=True``); ``baseline_power`` covers a constant shift
    such as ``pama_frontier(controller_power=...)``.
    """
    out: list[Violation] = []
    for index, point in enumerate(points):
        total = n_total if n_total is not None else max(point.n, 0)
        expected = (
            power_model.system_power(point.n, point.f, point.v, n_total=total)
            + baseline_power
        )
        ref = max(1.0, abs(expected))
        gap = abs(point.power - expected)
        if gap > tol * ref:
            out.append(
                Violation(
                    "power_consistency",
                    f"point (n={point.n}, f={point.f:.6g}, v={point.v:.6g}) "
                    f"claims {point.power:.9g} W but Eq. 6 gives "
                    f"{expected:.9g} W",
                    equation="Eq. 6",
                    slot=index,
                    magnitude=gap,
                )
            )
    return out


def check_pareto_frontier(
    frontier: OperatingFrontier,
    *,
    tol: float = 1e-12,
) -> list[Violation]:
    """Algorithm 2 lines 3–5: sorted, strictly improving, dominance-free."""
    out: list[Violation] = []
    points = frontier.points
    for i in range(1, len(points)):
        a, b = points[i - 1], points[i]
        if b.power <= a.power + tol:
            out.append(
                Violation(
                    "pareto_sorted",
                    f"frontier power not strictly increasing at index {i}: "
                    f"{a.power:.9g} -> {b.power:.9g} W",
                    equation="Alg. 2",
                    slot=i,
                    magnitude=a.power - b.power,
                )
            )
        if b.perf <= a.perf + tol:
            out.append(
                Violation(
                    "pareto_improving",
                    f"frontier perf not strictly increasing at index {i}: "
                    f"{a.perf:.9g} -> {b.perf:.9g}",
                    equation="Alg. 2",
                    slot=i,
                    magnitude=a.perf - b.perf,
                )
            )
    for i, a in enumerate(points):
        for j, b in enumerate(points):
            if i != j and a.dominates(b):
                out.append(
                    Violation(
                        "pareto_dominance",
                        f"frontier point {i} (power {a.power:.6g}, perf "
                        f"{a.perf:.6g}) dominates point {j} (power "
                        f"{b.power:.6g}, perf {b.perf:.6g})",
                        equation="Alg. 2",
                        slot=j,
                    )
                )
    return out


# ----------------------------------------------------------------------
# composite artifacts
# ----------------------------------------------------------------------
def check_allocation_result(
    charging: Schedule,
    result: AllocationResult,
    spec: BatterySpec,
    *,
    usage_floor: float = 0.0,
    usage_ceiling: "float | None" = None,
    tol: float = DEFAULT_TOL,
) -> list[Violation]:
    """Algorithm 1 output consistency.

    * the stored trajectory is the Eq. 10 integral of the stored usage;
    * a result claiming feasibility has its trajectory inside the window
      and its usage inside the band;
    * a feasible non-fallback plan is energy-balanced (Eq. 8) — the greedy
      fallback legitimately trades balance for feasibility, so it is
      exempt.
    """
    out: list[Violation] = []
    usage = result.usage
    traj = result.trajectory
    initial = float(traj[0])
    recomputed = battery_trajectory(charging, usage, initial)
    gap = float(np.max(np.abs(recomputed - traj)))
    scale = max(1.0, spec.c_max)
    if gap > tol * scale:
        out.append(
            Violation(
                "trajectory_consistency",
                f"stored trajectory deviates from the Eq. 10 integral of "
                f"the stored usage by up to {gap:.6g} J",
                equation="Eq. 10",
                magnitude=gap,
            )
        )
    verdict = check_trajectory(recomputed, spec.c_min, spec.c_max, tol=tol * scale)
    if result.feasible:
        out.extend(check_battery_bounds(recomputed, spec, tol=tol * scale))
        ceiling = math.inf if usage_ceiling is None else usage_ceiling
        for k, value in enumerate(usage.values):
            if value < usage_floor - tol or value > ceiling + tol:
                out.append(
                    Violation(
                        "usage_band",
                        f"feasible plan draws {value:.6g} W outside "
                        f"[{usage_floor:.6g}, {ceiling:.6g}]",
                        equation="Alg. 1",
                        slot=k,
                        magnitude=max(usage_floor - value, value - ceiling),
                    )
                )
        if not result.used_fallback:
            out.extend(check_energy_balance(charging, usage, tol=tol))
    elif verdict.feasible:
        out.append(
            Violation(
                "feasibility_flag",
                "result flagged infeasible but its trajectory is inside "
                f"the battery window (min {verdict.min_level:.6g}, max "
                f"{verdict.max_level:.6g} J)",
                equation="Alg. 1",
            )
        )
    return out


def check_energy_run(
    result: EnergyRunResult,
    spec: BatterySpec,
    *,
    tau: float,
    tol: float = DEFAULT_TOL,
) -> list[Violation]:
    """Table 1 energy bookkeeping: conservation, bounds, non-negativity."""
    out: list[Violation] = []
    scale = max(1.0, result.supplied, result.demand)
    for name, value in (
        ("wasted", result.wasted),
        ("undersupplied", result.undersupplied),
        ("demand_shortfall", result.demand_shortfall),
        ("supplied", result.supplied),
        ("delivered", result.delivered),
        ("demand", result.demand),
    ):
        if not math.isfinite(value) or value < -tol * scale:
            out.append(
                Violation(
                    "energy_nonnegative",
                    f"{name} energy is {value!r} J (must be finite and >= 0)",
                    magnitude=abs(value),
                )
            )
    out.extend(check_battery_bounds(result.battery_level, spec, tol=tol * scale))
    # the battery cannot deliver more than the policy asked for in a slot
    for k in range(result.used_power.size):
        if result.delivered_power[k] > result.used_power[k] + tol * scale:
            out.append(
                Violation(
                    "delivery_bounded",
                    f"delivered {result.delivered_power[k]:.6g} W exceeds the "
                    f"demanded draw {result.used_power[k]:.6g} W",
                    slot=k,
                    magnitude=float(
                        result.delivered_power[k] - result.used_power[k]
                    ),
                )
            )
    # undersupply identity: demanded = drawn + undersupplied, per slot
    shortfall = float(
        np.sum(np.maximum(0.0, result.used_power - result.delivered_power)) * tau
    )
    if abs(shortfall - result.undersupplied) > max(tol, tol * scale):
        out.append(
            Violation(
                "undersupply_identity",
                f"undersupplied={result.undersupplied:.6g} J but the per-slot "
                f"demanded-minus-delivered sum is {shortfall:.6g} J",
                magnitude=abs(shortfall - result.undersupplied),
            )
        )
    if spec.is_ideal and result.battery_level.size:
        # supplied = delivered + Δlevel + wasted for the lossless battery
        delta = float(result.battery_level[-1]) - float(spec.initial)
        residual = result.supplied - result.delivered - result.wasted - delta
        if abs(residual) > max(tol, tol * scale):
            out.append(
                Violation(
                    "energy_conservation",
                    f"supplied {result.supplied:.6g} != delivered "
                    f"{result.delivered:.6g} + wasted {result.wasted:.6g} + "
                    f"Δlevel {delta:.6g} (residual {residual:+.6g} J)",
                    magnitude=abs(residual),
                )
            )
    return out


#: Plan-payload fields the oracle requires, with their expected shapes.
_PAYLOAD_FIELDS: "tuple[tuple[str, tuple[type, ...]], ...]" = (
    ("scenario", (str,)),
    ("policy", (str,)),
    ("n_periods", (int,)),
    ("supply_factor", (int, float)),
    ("digest", (str,)),
    ("wasted", (int, float)),
    ("undersupplied", (int, float)),
    ("utilization", (int, float)),
)


def check_plan_payload(
    payload: Mapping,
    *,
    frontier: "OperatingFrontier | None" = None,
    tol: float = DEFAULT_TOL,
) -> list[Violation]:
    """Service-layer invariants on one ``plan`` response payload.

    Checks field presence/shape, metric sign/finiteness, the allocation
    band against the frontier, and that the advertised content digest
    actually matches the request fields (a replica serving a stale or
    mislabeled cache entry breaks exactly this).
    """
    out: list[Violation] = []
    for name, kinds in _PAYLOAD_FIELDS:
        value = payload.get(name)
        if not isinstance(value, kinds) or isinstance(value, bool):
            out.append(
                Violation(
                    "payload_shape",
                    f"field {name!r} is {value!r}, expected "
                    f"{'/'.join(k.__name__ for k in kinds)}",
                )
            )
    if out:
        return out  # shape is broken; value checks would only cascade
    for name in ("wasted", "undersupplied"):
        value = float(payload[name])
        if not math.isfinite(value) or value < -tol:
            out.append(
                Violation(
                    "payload_metrics",
                    f"{name}={value!r} J must be finite and >= 0",
                    magnitude=abs(value),
                )
            )
    utilization = float(payload["utilization"])
    if not math.isfinite(utilization) or utilization < -tol:
        out.append(
            Violation(
                "payload_metrics",
                f"utilization={utilization!r} must be finite and >= 0",
            )
        )
    allocated = payload.get("allocated_power")
    if allocated is not None:
        if not isinstance(allocated, (list, tuple, np.ndarray)):
            out.append(
                Violation(
                    "payload_shape",
                    f"allocated_power is {type(allocated).__name__}, "
                    "expected a per-slot list",
                )
            )
        else:
            ceiling = math.inf if frontier is None else frontier.max_power
            for k, value in enumerate(allocated):
                if value is None or (isinstance(value, float) and math.isnan(value)):
                    continue  # plan-free policy: allocation is null per slot
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    out.append(
                        Violation(
                            "payload_shape",
                            f"allocated_power[{k}] is {value!r}",
                            slot=k,
                        )
                    )
                elif value < -tol or value > ceiling + tol:
                    out.append(
                        Violation(
                            "allocation_band",
                            f"allocated_power[{k}]={value:.6g} W outside "
                            f"[0, {ceiling:.6g}]",
                            equation="Alg. 3",
                            slot=k,
                            magnitude=max(-value, value - ceiling),
                        )
                    )
    # digest must be recomputable from the request fields it claims to hash
    from ..service.protocol import PlanRequest  # deferred: keeps core import-light

    expected = PlanRequest(
        scenario=payload["scenario"],
        policy=payload["policy"],
        n_periods=payload["n_periods"],
        supply_factor=float(payload["supply_factor"]),
    ).digest()
    if payload["digest"] != expected:
        out.append(
            Violation(
                "payload_digest",
                f"digest {payload['digest']!r} does not match the request "
                f"fields (expected {expected!r})",
            )
        )
    return out


# ----------------------------------------------------------------------
# scenario-level composite
# ----------------------------------------------------------------------
def verify_scenario(
    scenario,
    frontier: OperatingFrontier,
    *,
    n_periods: int = 2,
    supply_factor: float = 1.0,
    session: "CheckSession | None" = None,
) -> VerificationReport:
    """Run the full oracle over one scenario end to end.

    Plans the scenario the same way the production path does (Eq. 7/8 →
    Algorithm 1 → Algorithm 2), simulates the managed run, and checks
    every stage's output.  Returns the combined report; with ``session``
    the checks are folded into the caller's accumulator instead.
    """
    from ..analysis.energy import run_managed
    from ..core.allocation import allocate
    from ..core.parameters import plan_parameters
    from ..core.wpuf import desired_usage

    own = session is None
    s = session or CheckSession()
    s.push_context(f"{scenario.name} x{supply_factor}")
    try:
        u_new = desired_usage(scenario.event_demand, scenario.weight(), scenario.charging)
        s.run(
            check_wpuf_normalization,
            scenario.event_demand,
            scenario.weight(),
            scenario.charging,
            u_new,
        )
        allocation = allocate(
            scenario.charging,
            u_new,
            scenario.spec,
            usage_ceiling=frontier.max_power,
        )
        s.run(
            check_allocation_result,
            scenario.charging,
            allocation,
            scenario.spec,
            usage_ceiling=frontier.max_power,
        )
        s.run(check_pareto_frontier, frontier)
        schedule = plan_parameters(
            allocation.usage,
            frontier,
            charging=scenario.charging,
            spec=scenario.spec,
            initial_level=float(allocation.trajectory[0]),
        )
        s.add(
            # the schedule reuses frontier points, whose Eq. 6 consistency
            # check_pareto/check_power cover; here we assert the budget rule:
            # a slot never picks a point it cannot afford unless even the
            # cheapest point exceeds the allocation.
            [
                Violation(
                    "budget_respected",
                    f"slot {d.slot} picked a {d.point.power:.6g} W point on a "
                    f"{d.allocated_power:.6g} W allocation with cheaper "
                    "points available",
                    equation="Alg. 2",
                    slot=d.slot,
                    magnitude=d.point.power - d.allocated_power,
                )
                for d in schedule.decisions
                if d.point.power > d.allocated_power + 1e-9
                and d.point.power > frontier.min_power + 1e-12
            ]
        )
        run = run_managed(
            scenario, frontier, n_periods=n_periods, supply_factor=supply_factor
        )
        s.run(check_energy_run, run, scenario.spec, tau=scenario.grid.tau)
    finally:
        s.pop_context()
    return s.report() if own else VerificationReport(0)
