"""Physical models: voltage/frequency, power, performance, battery, sources."""

from .voltage import (
    AlphaPowerVFMap,
    FixedVoltageVFMap,
    LinearVFMap,
    TabulatedVFMap,
    VoltageFrequencyMap,
)
from .power import PowerModel
from .performance import PerformanceModel
from .battery import Battery, BatterySpec, BatteryStep
from .sources import (
    ChargingSource,
    NoisySource,
    ScaledSource,
    ScheduledSource,
    SolarOrbitSource,
    SquareWaveSource,
    TraceSource,
    source_from_values,
)
from .events import (
    EventRateProfile,
    bursty_rate,
    constant_rate,
    diurnal_rate,
    emphasized_weight,
    uniform_weight,
)

__all__ = [
    "VoltageFrequencyMap",
    "LinearVFMap",
    "AlphaPowerVFMap",
    "FixedVoltageVFMap",
    "TabulatedVFMap",
    "PowerModel",
    "PerformanceModel",
    "Battery",
    "BatterySpec",
    "BatteryStep",
    "ChargingSource",
    "ScheduledSource",
    "SquareWaveSource",
    "SolarOrbitSource",
    "NoisySource",
    "ScaledSource",
    "TraceSource",
    "source_from_values",
    "EventRateProfile",
    "constant_rate",
    "diurnal_rate",
    "bursty_rate",
    "uniform_weight",
    "emphasized_weight",
]
