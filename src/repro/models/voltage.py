"""Voltage–frequency relationship ``g(v)`` and optimal-voltage selection.

Section 3 of the paper models performance as ``Perf ∝ min(f, g(v))`` where
``g(v)`` is the maximum clock frequency sustainable at supply voltage ``v``.
Section 4.2 then reduces the parameter space with Eq. (11): for a desired
frequency ``f`` the best voltage is ``g⁻¹(f)`` when that is above ``v_min``
and ``v_min`` otherwise — running at a higher voltage than needed wastes
``v²`` power without adding performance.

This module provides that map as a small class hierarchy:

* :class:`LinearVFMap` — ``g(v) = k·(v − v_th)``, the classic first-order
  delay model.
* :class:`AlphaPowerVFMap` — ``g(v) = k·(v − v_th)^α / v``, the alpha-power
  law used throughout the DVFS literature.
* :class:`FixedVoltageVFMap` — the degenerate ``v_min = v_max`` case of the
  paper's PAMA evaluation (3.3 V fixed, ``g(v) ≡ f_max``).
* :class:`TabulatedVFMap` — piecewise-linear map through measured
  ``(v, f)`` points.

All maps are monotone non-decreasing in ``v`` over ``[v_min, v_max]``, which
is what makes ``g⁻¹`` (computed generically by bisection) well defined.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..util.validation import check_positive

__all__ = [
    "VoltageFrequencyMap",
    "LinearVFMap",
    "AlphaPowerVFMap",
    "FixedVoltageVFMap",
    "TabulatedVFMap",
]


class VoltageFrequencyMap(ABC):
    """Maximum sustainable frequency as a function of supply voltage."""

    def __init__(self, v_min: float, v_max: float):
        check_positive("v_min", v_min)
        check_positive("v_max", v_max)
        if v_max < v_min:
            raise ValueError(f"v_max ({v_max}) must be >= v_min ({v_min})")
        self.v_min = float(v_min)
        self.v_max = float(v_max)

    # ------------------------------------------------------------------
    @abstractmethod
    def g(self, v: float) -> float:
        """Maximum frequency sustainable at voltage ``v`` (Hz)."""

    def _check_voltage(self, v: float) -> float:
        if not (self.v_min - 1e-12 <= v <= self.v_max + 1e-12):
            raise ValueError(
                f"voltage {v} outside supported range [{self.v_min}, {self.v_max}]"
            )
        return min(max(float(v), self.v_min), self.v_max)

    @property
    def f_floor(self) -> float:
        """``g(v_min)`` — the frequency below which voltage cannot help."""
        return self.g(self.v_min)

    @property
    def f_ceiling(self) -> float:
        """``g(v_max)`` — the highest frequency any voltage sustains."""
        return self.g(self.v_max)

    # ------------------------------------------------------------------
    def g_inverse(self, f: float) -> float:
        """Minimum voltage sustaining frequency ``f`` (generic bisection).

        Raises :class:`ValueError` if ``f`` exceeds ``g(v_max)``.
        """
        if f < 0:
            raise ValueError(f"frequency must be non-negative, got {f}")
        if f <= self.f_floor:
            return self.v_min
        if f > self.f_ceiling * (1 + 1e-12):
            raise ValueError(
                f"frequency {f} unreachable: g(v_max) = {self.f_ceiling}"
            )
        lo, hi = self.v_min, self.v_max
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.g(mid) < f:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-15 * self.v_max:
                break
        return hi

    def optimal_voltage(self, f: float) -> float:
        """Eq. (11): best voltage for frequency ``f``.

        ``g⁻¹(f)`` when that exceeds ``v_min`` (run just fast enough),
        otherwise ``v_min`` (voltage already at its floor).
        """
        return max(self.g_inverse(f), self.v_min)

    def effective_frequency(self, f: float, v: float) -> float:
        """``min(f, g(v))`` — the frequency the pipeline actually achieves."""
        return min(float(f), self.g(self._check_voltage(v)))


class LinearVFMap(VoltageFrequencyMap):
    """``g(v) = slope · (v − v_threshold)``, clamped at zero."""

    def __init__(self, v_min: float, v_max: float, slope: float, v_threshold: float = 0.0):
        super().__init__(v_min, v_max)
        check_positive("slope", slope)
        if v_threshold >= v_min:
            raise ValueError("v_threshold must lie below v_min")
        self.slope = float(slope)
        self.v_threshold = float(v_threshold)

    def g(self, v: float) -> float:
        v = self._check_voltage(v)
        return max(0.0, self.slope * (v - self.v_threshold))

    def g_inverse(self, f: float) -> float:  # closed form
        if f < 0:
            raise ValueError(f"frequency must be non-negative, got {f}")
        if f <= self.f_floor:
            return self.v_min
        v = f / self.slope + self.v_threshold
        if v > self.v_max * (1 + 1e-12):
            raise ValueError(f"frequency {f} unreachable: g(v_max) = {self.f_ceiling}")
        return min(v, self.v_max)


class AlphaPowerVFMap(VoltageFrequencyMap):
    """Alpha-power law ``g(v) = k · (v − v_th)^α / v`` (Sakurai–Newton)."""

    def __init__(
        self,
        v_min: float,
        v_max: float,
        k: float,
        v_threshold: float,
        alpha: float = 1.3,
    ):
        super().__init__(v_min, v_max)
        check_positive("k", k)
        check_positive("alpha", alpha)
        if not (0 <= v_threshold < v_min):
            raise ValueError("need 0 <= v_threshold < v_min")
        if alpha < 1.0:
            raise ValueError("alpha < 1 would make g non-monotone at high v")
        self.k = float(k)
        self.v_threshold = float(v_threshold)
        self.alpha = float(alpha)

    def g(self, v: float) -> float:
        v = self._check_voltage(v)
        return self.k * (v - self.v_threshold) ** self.alpha / v


class FixedVoltageVFMap(VoltageFrequencyMap):
    """Single supported voltage: the PAMA board case (3.3 V, 80 MHz max)."""

    def __init__(self, voltage: float, f_max: float):
        super().__init__(voltage, voltage)
        check_positive("f_max", f_max)
        self.f_max = float(f_max)

    def g(self, v: float) -> float:
        self._check_voltage(v)
        return self.f_max

    def g_inverse(self, f: float) -> float:
        if f < 0:
            raise ValueError(f"frequency must be non-negative, got {f}")
        if f > self.f_max * (1 + 1e-12):
            raise ValueError(f"frequency {f} unreachable: g(v_max) = {self.f_max}")
        return self.v_min


class TabulatedVFMap(VoltageFrequencyMap):
    """Piecewise-linear interpolation through measured ``(v, f)`` points."""

    def __init__(self, points: Sequence[tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("need at least two (voltage, frequency) points")
        pts = sorted((float(v), float(f)) for v, f in points)
        volts = np.array([p[0] for p in pts])
        freqs = np.array([p[1] for p in pts])
        if np.any(np.diff(volts) <= 0):
            raise ValueError("voltages must be strictly increasing")
        if np.any(np.diff(freqs) < 0):
            raise ValueError("frequencies must be non-decreasing in voltage")
        if np.any(freqs < 0):
            raise ValueError("frequencies must be non-negative")
        super().__init__(volts[0], volts[-1])
        self._volts = volts
        self._freqs = freqs

    def g(self, v: float) -> float:
        v = self._check_voltage(v)
        return float(np.interp(v, self._volts, self._freqs))
