"""External charging sources.

Section 2 of the paper assumes an external power source with a *periodic*
charging schedule — the motivating example is a solar panel on an orbiting
satellite, whose sun/eclipse cycle repeats with the orbital period.  The
planner works with the **expected** schedule ``c(t)``; the simulator draws
the **actual** supplied power, which may deviate (that deviation is what
Algorithm 3's run-time reallocation absorbs).

:class:`ChargingSource` therefore has two faces:

* :meth:`~ChargingSource.expected` — the per-slot :class:`Schedule` the
  planner sees, and
* :meth:`~ChargingSource.actual_power` — the instantaneous power the
  simulator integrates, which subclasses may perturb deterministically or
  stochastically.

Provided sources: exact schedule followers, square-wave sun/eclipse orbits
(the shape of the paper's Scenario I), half-sine solar orbits, finite
recorded traces, and noise/bias wrappers.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..util.schedule import Schedule
from ..util.timegrid import TimeGrid
from ..util.validation import check_in_range, check_non_negative

__all__ = [
    "ChargingSource",
    "ScheduledSource",
    "SquareWaveSource",
    "SolarOrbitSource",
    "NoisySource",
    "TraceSource",
    "ScaledSource",
]


class ChargingSource(ABC):
    """A periodic external power source."""

    def __init__(self, grid: TimeGrid):
        self.grid = grid

    @abstractmethod
    def expected(self) -> Schedule:
        """The expected charging schedule ``c(t)`` the planner uses."""

    def actual_power(self, t: float) -> float:
        """Instantaneous supplied power at absolute time ``t`` (W).

        Default: exactly the expected schedule.  Subclasses that model
        prediction error override this.
        """
        return self.expected()(t)

    def actual_slot_energy(self, slot_start: float) -> float:
        """Energy supplied over the slot beginning at ``slot_start`` (J).

        Integrates :meth:`actual_power` with a mid-slot sample per
        sub-interval; exact for the piecewise-constant sources here.
        """
        tau = self.grid.tau
        return self.actual_power(slot_start + 0.5 * tau) * tau


class ScheduledSource(ChargingSource):
    """Supplies exactly a given per-slot schedule (no prediction error)."""

    def __init__(self, schedule: Schedule):
        super().__init__(schedule.grid)
        self._schedule = schedule

    def expected(self) -> Schedule:
        return self._schedule

    def actual_power(self, t: float) -> float:
        return self._schedule(t)


class SquareWaveSource(ChargingSource):
    """Sunlit/eclipse square wave: ``peak`` W for the first ``sunlit_fraction``
    of the period, zero afterwards — the shape of the paper's Scenario I
    (2.36 W for the first half-period, 0 for the second)."""

    def __init__(self, grid: TimeGrid, peak: float, sunlit_fraction: float = 0.5):
        super().__init__(grid)
        check_non_negative("peak", peak)
        check_in_range("sunlit_fraction", sunlit_fraction, 0.0, 1.0)
        self.peak = float(peak)
        self.sunlit_fraction = float(sunlit_fraction)

    def expected(self) -> Schedule:
        starts = self.grid.slot_starts()
        sunlit = (starts + 0.5 * self.grid.tau) < self.sunlit_fraction * self.grid.period
        return Schedule(self.grid, np.where(sunlit, self.peak, 0.0))

    def actual_power(self, t: float) -> float:
        return self.peak if self.grid.wrap(t) < self.sunlit_fraction * self.grid.period else 0.0


class SolarOrbitSource(ChargingSource):
    """Half-sine insolation over the sunlit arc, eclipse otherwise.

    Models panel output ``peak·sin(π·x)`` for normalized sunlit position
    ``x ∈ [0, 1]`` — panel incidence rises and falls through the arc — and
    zero during eclipse.  The *expected* schedule is the slot-average of the
    continuous curve, so its integral matches the continuous energy.
    """

    def __init__(self, grid: TimeGrid, peak: float, sunlit_fraction: float = 0.6):
        super().__init__(grid)
        check_non_negative("peak", peak)
        check_in_range("sunlit_fraction", sunlit_fraction, 0.0, 1.0, inclusive=False)
        self.peak = float(peak)
        self.sunlit_fraction = float(sunlit_fraction)

    def _continuous(self, t: float) -> float:
        sunlit_len = self.sunlit_fraction * self.grid.period
        w = self.grid.wrap(t)
        if w >= sunlit_len:
            return 0.0
        return self.peak * math.sin(math.pi * w / sunlit_len)

    def expected(self) -> Schedule:
        # Slot-average of the half-sine: integrate analytically per slot.
        sunlit_len = self.sunlit_fraction * self.grid.period
        omega = math.pi / sunlit_len
        values = []
        for t0 in self.grid.slot_starts():
            t1 = min(t0 + self.grid.tau, sunlit_len)
            if t0 >= sunlit_len:
                values.append(0.0)
                continue
            integral = self.peak / omega * (math.cos(omega * t0) - math.cos(omega * t1))
            values.append(integral / self.grid.tau)
        return Schedule(self.grid, values)

    def actual_power(self, t: float) -> float:
        return self._continuous(t)

    def actual_slot_energy(self, slot_start: float) -> float:
        # exact integral of the half-sine over the slot
        sunlit_len = self.sunlit_fraction * self.grid.period
        omega = math.pi / sunlit_len
        t0 = self.grid.wrap(slot_start)
        t1 = min(t0 + self.grid.tau, sunlit_len)
        if t0 >= sunlit_len:
            return 0.0
        return self.peak / omega * (math.cos(omega * t0) - math.cos(omega * t1))


class NoisySource(ChargingSource):
    """Wraps a base source with multiplicative Gaussian prediction error.

    The *expected* schedule is the base's; the *actual* power per slot is
    ``base · max(0, 1 + σ·ξ_slot)`` with ``ξ`` drawn once per (periodic)
    slot from a seeded generator, so reruns are reproducible and the actual
    supply stays non-negative.
    """

    def __init__(self, base: ChargingSource, sigma: float, seed: int = 0):
        super().__init__(base.grid)
        check_non_negative("sigma", sigma)
        self.base = base
        self.sigma = float(sigma)
        self.seed = int(seed)
        self._factor_cache: dict[int, float] = {}

    def expected(self) -> Schedule:
        return self.base.expected()

    def _factor(self, absolute_slot: int) -> float:
        if absolute_slot not in self._factor_cache:
            rng = np.random.default_rng((self.seed, absolute_slot))
            self._factor_cache[absolute_slot] = max(
                0.0, 1.0 + self.sigma * float(rng.standard_normal())
            )
        return self._factor_cache[absolute_slot]

    def actual_power(self, t: float) -> float:
        absolute_slot = int(math.floor(t / self.grid.tau))
        return self.base.actual_power(t) * self._factor(absolute_slot)


class TraceSource(ChargingSource):
    """A finite recorded supply trace (non-periodic actuals).

    The *expected* schedule is still one periodic period (what the planner
    uses); the *actual* power follows the recorded per-slot trace, which
    may span several periods and differ from the forecast arbitrarily —
    e.g. a telemetry recording replayed through the simulator.  Beyond the
    end of the trace the source is dark.
    """

    def __init__(self, expected: Schedule, actual_trace: Sequence[float]):
        super().__init__(expected.grid)
        self._expected = expected
        trace = np.asarray(actual_trace, dtype=float)
        if trace.ndim != 1 or trace.size == 0:
            raise ValueError("actual_trace must be a non-empty 1-D sequence")
        if np.any(trace < 0):
            raise ValueError("supply trace must be non-negative")
        self._trace = trace

    @property
    def trace_length(self) -> int:
        return int(self._trace.size)

    def expected(self) -> Schedule:
        return self._expected

    def actual_power(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative for a recorded trace")
        slot = int(t / self.grid.tau)
        if slot >= self._trace.size:
            return 0.0
        return float(self._trace[slot])


class ScaledSource(ChargingSource):
    """A base source whose *actual* output is a constant factor off the
    prediction (systematic bias, e.g. panel degradation)."""

    def __init__(self, base: ChargingSource, factor: float):
        super().__init__(base.grid)
        check_non_negative("factor", factor)
        self.base = base
        self.factor = float(factor)

    def expected(self) -> Schedule:
        return self.base.expected()

    def actual_power(self, t: float) -> float:
        return self.base.actual_power(t) * self.factor


def source_from_values(grid: TimeGrid, values: Sequence[float]) -> ScheduledSource:
    """Convenience: build an exact source from per-slot wattages."""
    return ScheduledSource(Schedule(grid, values))
