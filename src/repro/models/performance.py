"""Performance model (paper Section 3, Eqs. 1–3).

The applications targeted by the paper are serial–parallel–serial task
graphs (Figure 2): an initial stage, ``N`` parallel tasks, and a final
stage.  With ``Tt`` the total single-processor execution time and ``Ts``
the non-parallelizable portion (both measured at a reference clock), the
``n``-processor execution time follows Amdahl's law, and clock/voltage
scaling multiplies throughput by the *effective frequency*
``min(f, g(v))`` (Eq. 1) — raising ``f`` beyond what the voltage sustains
buys nothing.

The combined model (Eq. 3)::

    Perf(n, f, v) = c1 · min(f, g(v)) / (Ts + (Tt − Ts)/n)

:class:`PerformanceModel` also exposes the *task time* — the wall-clock
seconds to complete one task instance at a given setting — which is what
the simulator and the FFT-workload calibration consume (the paper's
calibration point: one 2K-sample FFT takes 4.8 s at 20 MHz on one
processor).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.validation import check_non_negative, check_positive
from .voltage import VoltageFrequencyMap

__all__ = ["PerformanceModel"]


@dataclass(frozen=True)
class PerformanceModel:
    """Amdahl + DVFS performance of a serial–parallel–serial application.

    Parameters
    ----------
    t_total:
        ``Tt``: execution time of one task on one processor at ``f_ref``.
    t_serial:
        ``Ts``: the non-parallelizable portion of ``t_total`` (``0 ≤ Ts ≤ Tt``).
    f_ref:
        Reference clock frequency at which ``Tt``/``Ts`` were measured.
    vf_map:
        Voltage–frequency relationship supplying ``g(v)``.
    c1:
        Proportionality constant of Eq. 3; performance is reported in
        ``c1 · Hz / s`` units.  The default 1.0 is fine for all relative
        comparisons the algorithms make.
    """

    t_total: float
    t_serial: float
    f_ref: float
    vf_map: VoltageFrequencyMap
    c1: float = 1.0

    def __post_init__(self) -> None:
        check_positive("t_total", self.t_total)
        check_non_negative("t_serial", self.t_serial)
        check_positive("f_ref", self.f_ref)
        check_positive("c1", self.c1)
        if self.t_serial > self.t_total:
            raise ValueError(
                f"t_serial ({self.t_serial}) cannot exceed t_total ({self.t_total})"
            )

    # ------------------------------------------------------------------
    # Amdahl structure
    # ------------------------------------------------------------------
    @property
    def serial_fraction(self) -> float:
        """``Ts / Tt`` — Amdahl's serial fraction."""
        return self.t_serial / self.t_total

    def amdahl_time(self, n: int) -> float:
        """``Ts + (Tt − Ts)/n``: task time on ``n`` processors at ``f_ref``."""
        if n < 1:
            raise ValueError(f"need at least one processor, got n={n}")
        return self.t_serial + (self.t_total - self.t_serial) / n

    def speedup(self, n: int) -> float:
        """Classic Amdahl speedup ``Tt / (Ts + (Tt−Ts)/n)``."""
        return self.t_total / self.amdahl_time(n)

    @property
    def optimal_processor_count(self) -> float:
        """``n* = 2·(Tt/Ts − 1)`` — the Eq. 17 crossover.

        Below ``n*`` adding processors beats raising frequency (per unit
        power) in the voltage-scaling regime; above it, frequency wins.
        Returns ``inf`` for perfectly parallel workloads (``Ts = 0``).
        """
        if self.t_serial == 0:
            return float("inf")
        return 2.0 * (self.t_total / self.t_serial - 1.0)

    # ------------------------------------------------------------------
    # DVFS-scaled quantities
    # ------------------------------------------------------------------
    def effective_frequency(self, f: float, v: float) -> float:
        """Eq. 1: ``min(f, g(v))``."""
        check_non_negative("f", f)
        return self.vf_map.effective_frequency(f, v)

    def perf(self, n: int, f: float, v: float | None = None) -> float:
        """Eq. 3 performance (tasks per second, scaled by ``c1·f_ref``).

        With ``v`` omitted, the Eq. 11 optimal voltage for ``f`` is used.
        ``n = 0`` or ``f = 0`` yield zero performance (system parked).
        """
        if n == 0 or f == 0:
            return 0.0
        if v is None:
            v = self.vf_map.optimal_voltage(f)
        f_eff = self.effective_frequency(f, v)
        return self.c1 * f_eff / self.amdahl_time(n)

    def task_time(self, n: int, f: float, v: float | None = None) -> float:
        """Wall-clock seconds to finish one task at setting ``(n, f, v)``.

        This is ``amdahl_time(n) · f_ref / min(f, g(v))`` — the quantity the
        simulator schedules with and the paper calibrates (4.8 s for the 2K
        FFT at 20 MHz, n = 1).  Returns ``inf`` when the system is parked.
        """
        if n == 0 or f == 0:
            return float("inf")
        if v is None:
            v = self.vf_map.optimal_voltage(f)
        f_eff = self.effective_frequency(f, v)
        if f_eff <= 0:
            return float("inf")
        return self.amdahl_time(n) * self.f_ref / f_eff

    def throughput(self, n: int, f: float, v: float | None = None) -> float:
        """Tasks per second at setting ``(n, f, v)`` (``1 / task_time``)."""
        t = self.task_time(n, f, v)
        return 0.0 if t == float("inf") else 1.0 / t
