"""Power-consumption model (paper Section 3, Eqs. 4–6).

The per-processor dynamic power is ``P ∝ f·v²`` (Eq. 4), so a homogeneous
``n``-processor system at common ``(f, v)`` draws ``P = c2·n·f·v²`` (Eq. 6),
and a system with per-processor settings draws ``c2·Σ fᵢvᵢ²`` (Eq. 5).
Inactive processors are not free: the M32R/D keeps an interrupt monitor
running in stand-by mode (6.6 mW), so :class:`PowerModel` carries per-mode
static floors in addition to the switching constant ``c2``.

The constant ``c2`` is usually obtained from one measured reference point —
:meth:`PowerModel.from_reference_point` — e.g. the paper's per-processor
0.393 W at 80 MHz / 3.3 V (⇒ 0.0983 W at 20 MHz, the quantum every power
value in Tables 1–5 is a multiple of).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..util.validation import check_non_negative, check_positive

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Switching + static power of a homogeneous processor pool.

    Parameters
    ----------
    c2:
        Switching-capacitance constant of Eq. 4: active dynamic power is
        ``c2 · f · v²`` watts (``f`` in Hz, ``v`` in volts).
    standby_power:
        Static draw of a processor in stand-by mode (W).  Stand-by
        processors contribute this regardless of ``(f, v)``.
    sleep_power:
        Static draw in sleep mode (memory retained, core stopped).
    active_floor:
        Static draw added to every *active* processor on top of the
        dynamic ``c2·f·v²`` term (leakage / always-on periphery).
    """

    c2: float
    standby_power: float = 0.0
    sleep_power: float = 0.0
    active_floor: float = 0.0

    def __post_init__(self) -> None:
        check_positive("c2", self.c2)
        check_non_negative("standby_power", self.standby_power)
        check_non_negative("sleep_power", self.sleep_power)
        check_non_negative("active_floor", self.active_floor)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_reference_point(
        cls,
        f_ref: float,
        v_ref: float,
        p_ref: float,
        *,
        standby_power: float = 0.0,
        sleep_power: float = 0.0,
        active_floor: float = 0.0,
    ) -> "PowerModel":
        """Calibrate ``c2`` from one measured active point.

        ``p_ref`` is the measured *dynamic* power of a single active
        processor at ``(f_ref, v_ref)`` (after subtracting ``active_floor``
        if one is supplied).
        """
        check_positive("f_ref", f_ref)
        check_positive("v_ref", v_ref)
        check_positive("p_ref", p_ref)
        if p_ref <= active_floor:
            raise ValueError("reference power must exceed the active floor")
        c2 = (p_ref - active_floor) / (f_ref * v_ref**2)
        return cls(
            c2=c2,
            standby_power=standby_power,
            sleep_power=sleep_power,
            active_floor=active_floor,
        )

    # ------------------------------------------------------------------
    # per-processor powers
    # ------------------------------------------------------------------
    def active_power(self, f: float, v: float) -> float:
        """Power of one active processor at clock ``f`` and voltage ``v``."""
        check_non_negative("f", f)
        check_positive("v", v)
        return self.c2 * f * v**2 + self.active_floor

    def mode_power(self, mode: str, f: float = 0.0, v: float = 0.0) -> float:
        """Power of one processor in ``mode`` ∈ {active, sleep, standby, off}."""
        if mode == "active":
            return self.active_power(f, v)
        if mode == "sleep":
            return self.sleep_power
        if mode == "standby":
            return self.standby_power
        if mode == "off":
            return 0.0
        raise ValueError(f"unknown processor mode {mode!r}")

    # ------------------------------------------------------------------
    # system powers (Eqs. 5 and 6)
    # ------------------------------------------------------------------
    def system_power(
        self,
        n_active: int,
        f: float,
        v: float,
        *,
        n_total: int | None = None,
    ) -> float:
        """Eq. 6 plus stand-by floors: ``c2·n·f·v²`` for the active pool,
        ``standby_power`` for each of the remaining ``n_total − n_active``.

        With ``n_total`` omitted, only the active pool is counted.
        """
        if n_active < 0:
            raise ValueError(f"n_active must be >= 0, got {n_active}")
        if n_total is None:
            n_total = n_active
        if n_total < n_active:
            raise ValueError(
                f"n_total ({n_total}) must be >= n_active ({n_active})"
            )
        active = n_active * self.active_power(f, v) if n_active else 0.0
        return active + (n_total - n_active) * self.standby_power

    def heterogeneous_power(
        self,
        freqs: Sequence[float],
        volts: Sequence[float],
    ) -> float:
        """Eq. 5: ``c2 · Σ fᵢ·vᵢ²`` over per-processor settings.

        A processor with ``fᵢ = 0`` is treated as stand-by (its ``vᵢ`` is
        ignored), matching the paper's zero-frequency inactive notation.
        """
        f = np.asarray(freqs, dtype=float)
        v = np.asarray(volts, dtype=float)
        if f.shape != v.shape:
            raise ValueError("freqs and volts must have equal length")
        if np.any(f < 0):
            raise ValueError("frequencies must be non-negative")
        active = f > 0
        if np.any(v[active] <= 0):
            raise ValueError("active processors need a positive voltage")
        dynamic = self.c2 * float(np.sum(f[active] * v[active] ** 2))
        floors = self.active_floor * int(np.count_nonzero(active))
        standby = self.standby_power * int(np.count_nonzero(~active))
        return dynamic + floors + standby

    # ------------------------------------------------------------------
    # energy helper
    # ------------------------------------------------------------------
    def energy(
        self,
        n_active: int,
        f: float,
        v: float,
        duration: float,
        *,
        n_total: int | None = None,
    ) -> float:
        """Energy in joules over ``duration`` seconds at a fixed setting."""
        check_non_negative("duration", duration)
        return self.system_power(n_active, f, v, n_total=n_total) * duration
