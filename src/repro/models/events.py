"""Event-rate schedules ``u(t)`` and weight functions ``w(t)``.

Section 2 defines two planner inputs besides the charging schedule:

* the **expected event rate schedule** ``u(t)`` — the rate of the events
  that initiate computation (RF triggers in the FORTE example), expressed
  here directly in desired power (W) or in events/s convertible to power
  through a per-event cost; and
* the **weight function** ``w(t)`` — user input emphasizing portions of
  the period (the paper's example: weight commute hours higher in a
  traffic-monitoring system).

Both are plain :class:`~repro.util.schedule.Schedule` objects; this module
provides named constructors for the common shapes plus the
:class:`EventRateProfile` wrapper that converts between events/s and
demanded power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..util.schedule import Schedule
from ..util.timegrid import TimeGrid
from ..util.validation import check_non_negative, check_positive

__all__ = [
    "EventRateProfile",
    "constant_rate",
    "diurnal_rate",
    "bursty_rate",
    "uniform_weight",
    "emphasized_weight",
]


# ----------------------------------------------------------------------
# event-rate schedule constructors
# ----------------------------------------------------------------------
def constant_rate(grid: TimeGrid, rate: float) -> Schedule:
    """A flat event-rate schedule."""
    check_non_negative("rate", rate)
    return Schedule.constant(grid, rate)


def diurnal_rate(
    grid: TimeGrid,
    mean: float,
    amplitude: float,
    phase: float = 0.0,
) -> Schedule:
    """Sinusoidal rate ``mean + amplitude·sin(2πt/T + phase)``, floored at 0.

    Models periodic activity cycles (day/night RF traffic, commute peaks).
    Requires ``amplitude ≤ mean`` to keep the ideal curve non-negative.
    """
    check_non_negative("mean", mean)
    check_non_negative("amplitude", amplitude)
    if amplitude > mean:
        raise ValueError("amplitude must not exceed mean (rate would go negative)")
    t = grid.slot_starts() + 0.5 * grid.tau
    values = mean + amplitude * np.sin(2.0 * math.pi * t / grid.period + phase)
    return Schedule(grid, np.maximum(values, 0.0))


def bursty_rate(
    grid: TimeGrid,
    base: float,
    burst: float,
    burst_slots: list[int] | tuple[int, ...],
) -> Schedule:
    """Baseline rate with bursts: ``base`` everywhere, ``burst`` in the
    listed (wrapped) slots."""
    check_non_negative("base", base)
    check_non_negative("burst", burst)
    values = np.full(grid.n_slots, float(base))
    for slot in burst_slots:
        values[grid.slot_index(slot)] = burst
    return Schedule(grid, values)


# ----------------------------------------------------------------------
# weight functions
# ----------------------------------------------------------------------
def uniform_weight(grid: TimeGrid) -> Schedule:
    """The neutral weight ``w(t) ≡ 1``."""
    return Schedule.constant(grid, 1.0)


def emphasized_weight(
    grid: TimeGrid,
    slots: list[int] | tuple[int, ...],
    factor: float,
) -> Schedule:
    """Weight ``factor`` on the listed slots and 1 elsewhere.

    Implements the paper's traffic-monitoring example: give commute-time
    slots a higher weight so the allocation pushes more power there.
    """
    check_positive("factor", factor)
    values = np.ones(grid.n_slots)
    for slot in slots:
        values[grid.slot_index(slot)] = factor
    return Schedule(grid, values)


# ----------------------------------------------------------------------
# events/s ↔ demanded power
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EventRateProfile:
    """An event-rate schedule plus the energy cost of serving one event.

    ``u(t)`` in the paper plays double duty: it is an events/s rate, but the
    WPUF arithmetic (Eq. 7–8) treats ``u·w`` as a power shape.  The bridge
    is the energy one event costs at the reference operating point:
    ``demanded_power = rate · energy_per_event``.

    Parameters
    ----------
    rate:
        Events per second, per slot.
    energy_per_event:
        Joules required to process one event at the reference setting.
    """

    rate: Schedule
    energy_per_event: float

    def __post_init__(self) -> None:
        check_positive("energy_per_event", self.energy_per_event)
        if np.any(self.rate.values < 0):
            raise ValueError("event rates must be non-negative")

    @property
    def grid(self) -> TimeGrid:
        return self.rate.grid

    def demanded_power(self) -> Schedule:
        """Power (W) needed to keep up with the expected rate."""
        return self.rate * self.energy_per_event

    def events_in_slot(self, slot: int) -> float:
        """Expected event count in (wrapped) slot ``slot``."""
        return self.rate[slot] * self.grid.tau

    def total_events(self) -> float:
        """Expected events over one full period."""
        return self.rate.total_energy()  # Σ rate·τ
