"""Rechargeable-battery model with waste and undersupply accounting.

The system of the paper draws all power from a rechargeable battery that an
external periodic source charges (Section 2).  Two capacity limits shape the
whole algorithm:

* ``c_max`` — maximum stored energy.  Charge arriving while full is
  **wasted** (the paper's first evaluation metric).
* ``c_min`` — minimum charge that must be maintained at all times.  Demand
  that would pull the level below ``c_min`` is **undersupplied** (the second
  metric): the computation simply cannot run until the battery recovers.

:class:`BatterySpec` is the immutable description used by the planning
algorithms; :class:`Battery` is the stateful simulation object that steps
through time integrating charge/draw flows and accumulating both metrics.

Step semantics
--------------
Flows are resolved *bus-first*: the load draws directly from the source
while both are present, and only the surplus charges the cell (at
``charge_efficiency``) or the deficit discharges it (costing
``1/discharge_efficiency`` of stored energy per delivered joule).  With
the default perfect efficiencies this reduces to the paper's ideal
battery.  Within one step the flows are constant, so the level moves
linearly until it hits a bound; the step splits the interval at the exact
crossing instant, making the accounting independent of how finely time is
sliced (an invariant the property tests exercise).

Conservation identities (all property-tested):

* ``supplied = charged + wasted``
* ``demanded = drawn + undersupplied``
* ``Δlevel  = η_c·(charged − passthrough) − (drawn − passthrough)/η_d``
  which for perfect efficiency collapses to ``Δlevel = charged − drawn``;
* ``supplied = drawn + Δlevel + wasted + conversion_loss``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.validation import check_in_range, check_non_negative

__all__ = ["BatterySpec", "BatteryStep", "Battery"]


@dataclass(frozen=True)
class BatterySpec:
    """Capacity window, initial charge, and round-trip efficiency.

    Energies are in joules.  ``c_min ≤ initial ≤ c_max``.  The efficiency
    factors are fractions in ``(0, 1]``; the paper's model is ideal
    (both 1.0), the ablation benches derate them.
    """

    c_max: float
    c_min: float = 0.0
    initial: float | None = None
    charge_efficiency: float = 1.0
    discharge_efficiency: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("c_max", self.c_max)
        check_non_negative("c_min", self.c_min)
        check_in_range("charge_efficiency", self.charge_efficiency, 0.0, 1.0)
        check_in_range("discharge_efficiency", self.discharge_efficiency, 0.0, 1.0)
        if self.charge_efficiency == 0.0 or self.discharge_efficiency == 0.0:
            raise ValueError("efficiencies must be positive")
        if self.c_min > self.c_max:
            raise ValueError(
                f"c_min ({self.c_min}) cannot exceed c_max ({self.c_max})"
            )
        if self.initial is None:
            object.__setattr__(self, "initial", self.c_min)
        if not (self.c_min - 1e-12 <= self.initial <= self.c_max + 1e-12):
            raise ValueError(
                f"initial charge {self.initial} outside [{self.c_min}, {self.c_max}]"
            )

    @property
    def usable(self) -> float:
        """Energy between the two limits (``c_max − c_min``)."""
        return self.c_max - self.c_min

    @property
    def is_ideal(self) -> bool:
        """True for the paper's lossless battery."""
        return self.charge_efficiency == 1.0 and self.discharge_efficiency == 1.0

    def clamp(self, level: float) -> float:
        """Clamp a level into the legal window."""
        return min(max(level, self.c_min), self.c_max)


@dataclass(frozen=True)
class BatteryStep:
    """Outcome of one :meth:`Battery.step` call (all energies in joules)."""

    charged: float  #: source energy accepted (stored into the cell + pass-through)
    drawn: float  #: energy actually delivered to the load
    wasted: float  #: source energy lost because the battery was full
    undersupplied: float  #: demanded energy that could not be delivered
    level: float  #: stored energy after the step
    conversion_loss: float = 0.0  #: energy lost to charge/discharge inefficiency


class Battery:
    """Stateful rechargeable battery (see module docstring for semantics)."""

    def __init__(self, spec: BatterySpec):
        self.spec = spec
        self._level = float(spec.initial)
        self._wasted = 0.0
        self._undersupplied = 0.0
        self._charged = 0.0
        self._drawn = 0.0
        self._conversion_loss = 0.0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def level(self) -> float:
        """Currently stored energy (J)."""
        return self._level

    @property
    def total_wasted(self) -> float:
        """Cumulative source energy lost to overflow (J)."""
        return self._wasted

    @property
    def total_undersupplied(self) -> float:
        """Cumulative demanded-but-undelivered energy (J)."""
        return self._undersupplied

    @property
    def total_charged(self) -> float:
        """Cumulative source energy accepted (J)."""
        return self._charged

    @property
    def total_drawn(self) -> float:
        """Cumulative energy actually delivered to the load (J)."""
        return self._drawn

    @property
    def total_conversion_loss(self) -> float:
        """Cumulative energy lost to charge/discharge inefficiency (J)."""
        return self._conversion_loss

    @property
    def headroom(self) -> float:
        """Energy the battery can still absorb (``c_max − level``)."""
        return self.spec.c_max - self._level

    @property
    def reserve(self) -> float:
        """Energy available above the floor (``level − c_min``)."""
        return self._level - self.spec.c_min

    def reset(self, level: float | None = None) -> None:
        """Restore initial level (or ``level``) and zero the accumulators."""
        self._level = float(self.spec.initial if level is None else level)
        if not (self.spec.c_min - 1e-12 <= self._level <= self.spec.c_max + 1e-12):
            raise ValueError(f"reset level {self._level} outside capacity window")
        self._wasted = self._undersupplied = 0.0
        self._charged = self._drawn = 0.0
        self._conversion_loss = 0.0

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, charge_power: float, draw_power: float, dt: float) -> BatteryStep:
        """Advance ``dt`` seconds with constant flows (W).

        Returns a :class:`BatteryStep` with the exact energy bookkeeping,
        splitting the interval at the instant the level reaches a bound.
        """
        check_non_negative("charge_power", charge_power)
        check_non_negative("draw_power", draw_power)
        check_non_negative("dt", dt)
        if dt == 0:
            return BatteryStep(0.0, 0.0, 0.0, 0.0, self._level)

        eta_c = self.spec.charge_efficiency
        eta_d = self.spec.discharge_efficiency
        direct = min(charge_power, draw_power)  # bus pass-through (W)
        surplus = charge_power - direct  # candidate cell inflow (W, bus side)
        deficit = draw_power - direct  # must come from the cell (W, load side)

        charged = direct * dt
        drawn = direct * dt
        wasted = undersupplied = loss = 0.0
        level = self._level

        if surplus > 0 and level < self.spec.c_max:
            # cell absorbs at η_c·surplus until full
            rate = eta_c * surplus
            t_hit = (self.spec.c_max - level) / rate
            t_rise = min(t_hit, dt)
            charged += surplus * t_rise
            loss += (1.0 - eta_c) * surplus * t_rise
            level += rate * t_rise
            rest = dt - t_rise
            if rest > 0:
                wasted += surplus * rest
        elif surplus > 0:  # already full
            wasted += surplus * dt
        elif deficit > 0 and level > self.spec.c_min:
            # cell releases deficit/η_d per delivered watt until the floor
            rate = deficit / eta_d
            t_hit = (level - self.spec.c_min) / rate
            t_fall = min(t_hit, dt)
            drawn += deficit * t_fall
            loss += (rate - deficit) * t_fall
            level -= rate * t_fall
            rest = dt - t_fall
            if rest > 0:
                undersupplied += deficit * rest
        elif deficit > 0:  # already at floor
            undersupplied += deficit * dt

        level = self.spec.clamp(level)
        self._level = level
        self._charged += charged
        self._drawn += drawn
        self._wasted += wasted
        self._undersupplied += undersupplied
        self._conversion_loss += loss
        return BatteryStep(charged, drawn, wasted, undersupplied, level, loss)
