"""Full-fidelity board runs: manager decisions on the PamaBoard model.

The abstract simulator (:mod:`repro.sim.system`) books energy from the
power *model*; this runner instead drives the actual board substrate —
eight stateful M32R/D chips, the FPGA clock-change protocol, the command
ring, and the measurement board — so chip-level accounting, switching
latencies, and the power-meter trace are all real.  The run produces the
paper's Section 5 setup end to end: the controller chip computes the
plan, commands workers over the ring each interval, and the measurement
board integrates the true draw the battery then serves.

Cross-checks (tested in ``tests/sim/test_board_runner.py``):

* the meter's trapezoidal energy equals the chips' summed energy;
* the board draw equals the frontier's modeled power plus the controller
  and stand-by floors, slot by slot;
* the battery books close (supplied = drawn + Δlevel + wasted).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.manager import DynamicPowerManager
from ..hw.board import PamaBoard
from ..models.battery import Battery, BatterySpec
from ..models.sources import ChargingSource

__all__ = ["BoardSlot", "BoardRunResult", "BoardRunner"]


@dataclass(frozen=True)
class BoardSlot:
    """One interval of a board-level run."""

    slot: int
    n_active: int
    frequency: float
    board_power: float  #: true chip-level draw during the slot (W)
    worker_power: float  #: active-worker portion reported to the manager (W)
    supplied_power: float  #: source output (W)
    battery_level: float  #: J at slot end
    command_messages: int  #: ring messages sent applying the setting
    switch_latency: float  #: worst-case worker-unavailable time (s)


@dataclass(frozen=True)
class BoardRunResult:
    """Totals and per-slot rows of a board-level run."""

    slots: tuple[BoardSlot, ...]
    chip_energy: float  #: Σ per-chip consumed energy (J)
    meter_energy: float  #: measurement-board integral (J)
    battery_wasted: float
    battery_undersupplied: float
    frequency_changes: int
    ring_messages: int

    @property
    def duration(self) -> float:
        return len(self.slots)

    def mean_power(self, tau: float) -> float:
        return self.chip_energy / (len(self.slots) * tau) if self.slots else 0.0


class BoardRunner:
    """Run a planned manager against the physical board model."""

    def __init__(
        self,
        board: PamaBoard,
        manager: DynamicPowerManager,
        source: ChargingSource,
        spec: BatterySpec,
    ):
        if board.n_workers < manager.frontier.max_perf_point.n:
            raise ValueError(
                "board has fewer workers than the manager's frontier assumes"
            )
        self.board = board
        self.manager = manager
        self.source = source
        self.spec = spec

    def run(self, n_slots: int) -> BoardRunResult:
        """Execute ``n_slots`` intervals of the Section 5 control loop."""
        if n_slots < 1:
            raise ValueError("need at least one slot")
        tau = self.manager.grid.tau
        if self.manager.allocation is None:
            self.manager.plan()
        self.manager.start()
        battery = Battery(self.spec)
        rows: list[BoardSlot] = []
        energy_before = self.board.total_energy()

        for k in range(n_slots):
            point = self.manager.decide()
            applied = self.board.apply_setting(point.n, point.f)
            # sample at the slot start so the meter's trapezoids bracket
            # constant-power intervals exactly (settings change only here)
            self.board.meter.sample(self.board.now)

            board_power = self.board.total_power()
            worker_power = sum(w.power for w in self.board.workers if w.is_active)
            supplied = self.source.actual_slot_energy(self.board.now) / tau

            self.board.run_for(tau)
            step = battery.step(supplied, board_power, tau)

            # report what the battery actually served of the worker share
            served_fraction = (
                step.drawn / (board_power * tau) if board_power > 0 else 1.0
            )
            self.manager.advance(
                used_power=worker_power * served_fraction,
                supplied_power=supplied,
            )
            rows.append(
                BoardSlot(
                    slot=k,
                    n_active=point.n,
                    frequency=point.f,
                    board_power=board_power,
                    worker_power=worker_power,
                    supplied_power=supplied,
                    battery_level=step.level,
                    command_messages=applied.command_messages,
                    switch_latency=applied.overhead_time_s,
                )
            )

        return BoardRunResult(
            slots=tuple(rows),
            chip_energy=self.board.total_energy() - energy_before,
            meter_energy=self.board.meter.energy,
            battery_wasted=battery.total_wasted,
            battery_undersupplied=battery.total_undersupplied,
            frequency_changes=len(self.board.clock.changes),
            ring_messages=len(self.board.ring.log),
        )
