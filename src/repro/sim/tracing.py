"""Per-slot simulation traces and summary metrics.

The evaluation compares policies on the paper's two metrics —

* **wasted energy**: external energy that arrived while the battery was
  full ("energy that was not used for useful computation"), and
* **undersupplied energy**: "energy needed for computation but not
  available at that time"

— plus the secondary quantities the tables print (used power, supplied
power, battery level) and service quality (events processed / dropped).
:class:`SimTrace` accumulates one :class:`SlotRecord` per interval and
reduces to a :class:`SimSummary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SlotRecord", "SimSummary", "SimTrace"]


@dataclass(frozen=True)
class SlotRecord:
    """Everything that happened in one interval ``τ``."""

    slot: int
    time: float  #: slot start (s)
    allocated_power: float  #: planner's P_init at decision time (W); NaN for plan-free policies
    n_active: int  #: active processors during the slot
    frequency: float  #: common worker clock (Hz)
    used_power: float  #: demanded draw (W)
    delivered_power: float  #: draw actually served by battery+source (W)
    supplied_power: float  #: external supply (W)
    wasted_energy: float  #: overflow loss this slot (J)
    undersupplied_energy: float  #: unmet demand this slot (J)
    battery_level: float  #: level at slot end (J)
    arrivals: float  #: events arriving this slot
    processed: float  #: events completed this slot
    backlog: float  #: queue length at slot end


class SimTrace:
    """Ordered collection of slot records with summary reductions."""

    def __init__(self, tau: float):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = float(tau)
        self.records: list[SlotRecord] = []

    def append(self, record: SlotRecord) -> None:
        if self.records and record.slot != self.records[-1].slot + 1:
            raise ValueError("slot records must be appended in order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, i):
        return self.records[i]

    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """One field across all records, as an array."""
        return np.array([getattr(r, name) for r in self.records], dtype=float)

    def summary(self) -> "SimSummary":
        if not self.records:
            raise ValueError("empty trace")
        wasted = float(self.column("wasted_energy").sum())
        under = float(self.column("undersupplied_energy").sum())
        supplied = float(self.column("supplied_power").sum() * self.tau)
        delivered = float(self.column("delivered_power").sum() * self.tau)
        return SimSummary(
            duration=len(self.records) * self.tau,
            wasted_energy=wasted,
            undersupplied_energy=under,
            supplied_energy=supplied,
            used_energy=delivered,
            energy_utilization=(delivered / supplied) if supplied > 0 else 0.0,
            events_arrived=float(self.column("arrivals").sum()),
            events_processed=float(self.column("processed").sum()),
            final_backlog=float(self.records[-1].backlog),
            final_battery_level=float(self.records[-1].battery_level),
        )


@dataclass(frozen=True)
class SimSummary:
    """Whole-run reductions (the Table 1 quantities and companions)."""

    duration: float  #: simulated seconds
    wasted_energy: float  #: J — Table 1, metric 1
    undersupplied_energy: float  #: J — Table 1, metric 2
    supplied_energy: float  #: J arriving from the external source
    used_energy: float  #: J actually delivered to computation
    energy_utilization: float  #: used / supplied (the paper's utilization)
    events_arrived: float
    events_processed: float
    final_backlog: float
    final_battery_level: float

    @property
    def service_ratio(self) -> float:
        """Fraction of arrived events completed."""
        if self.events_arrived == 0:
            return 1.0
        return self.events_processed / self.events_arrived
