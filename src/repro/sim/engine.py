"""Minimal discrete-event simulation core.

A classic calendar-queue engine: callbacks scheduled at absolute times,
executed in time order (FIFO among equal timestamps).  The power-management
simulation is slot-synchronous (the paper updates parameters every ``τ``),
but the engine is general — the board-level pieces (frequency-change
wakeups, ring message deliveries) schedule sub-slot events on the same
timeline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

__all__ = ["SimEvent", "SimulationEngine"]


@dataclass(frozen=True)
class SimEvent:
    """Handle for a scheduled callback (cancellable)."""

    time: float
    seq: int

    def __lt__(self, other: "SimEvent") -> bool:  # pragma: no cover - heapq glue
        return (self.time, self.seq) < (other.time, other.seq)


class SimulationEngine:
    """Time-ordered callback executor."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._queued: set[int] = set()  # seqs currently in the heap
        self._cancelled: set[int] = set()  # always a subset of _queued
        self._events_run = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (s)."""
        return self._now

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending(self) -> int:
        """Live (scheduled, not executed, not cancelled) callbacks."""
        return len(self._queue) - len(self._cancelled)

    # ------------------------------------------------------------------
    def at(self, time: float, fn: Callable[[], None]) -> SimEvent:
        """Schedule ``fn`` at absolute ``time`` (must not be in the past)."""
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule at {time} — current time is {self._now}"
            )
        seq = next(self._seq)
        heapq.heappush(self._queue, (float(time), seq, fn))
        self._queued.add(seq)
        return SimEvent(float(time), seq)

    def after(self, delay: float, fn: Callable[[], None]) -> SimEvent:
        """Schedule ``fn`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self._now + delay, fn)

    def cancel(self, event: SimEvent) -> None:
        """Cancel a pending event (no-op if already executed or cancelled)."""
        if event.seq in self._queued:
            self._cancelled.add(event.seq)

    # ------------------------------------------------------------------
    def _discard_cancelled_head(self) -> None:
        """Pop cancelled entries off the queue head (and forget their seqs)."""
        while self._queue and self._queue[0][1] in self._cancelled:
            _, seq, _ = heapq.heappop(self._queue)
            self._queued.discard(seq)
            self._cancelled.discard(seq)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        self._discard_cancelled_head()
        if not self._queue:
            return False
        time, seq, fn = heapq.heappop(self._queue)
        self._queued.discard(seq)
        self._now = time
        self._events_run += 1
        fn()
        return True

    def run_until(self, t_end: float) -> None:
        """Execute events with ``time <= t_end``; the clock ends at ``t_end``.

        The bound applies to the event actually executed: cancelled queue
        heads are purged lazily *before* the head time is compared, so a
        cancelled entry at ``t <= t_end`` can never smuggle a live event
        with ``time > t_end`` past the deadline.
        """
        if t_end < self._now:
            raise ValueError("t_end precedes the current time")
        while True:
            self._discard_cancelled_head()
            if not self._queue or self._queue[0][0] > t_end + 1e-12:
                break
            self.step()
        self._now = max(self._now, t_end)

    def run(self) -> None:
        """Drain the queue completely."""
        while self.step():
            pass
