"""Mission executor: FFT work units on the physical board model.

The paper's simulation runs real fixed-point FFTs on the PIM chips:
events queue on the controller, each event's task graph is split across
the active workers (serial head on one chip, parallel stage divided,
serial tail gathered), and a worker polls for commands "after each
computation".  :class:`MissionExecutor` reproduces that loop at cycle
granularity on :class:`~repro.hw.board.PamaBoard`:

* the manager decides the slot's operating point, the board applies it;
* queued work units execute on the active workers — cycles are charged
  to the chips (visible in ``Processor.busy_cycles``) and wall time
  follows the Fig. 2 critical path at the current clock;
* energy flows through the battery exactly as in the abstract harness,
  so the mission report's books agree with the planner's.

This is the heaviest-weight run mode; the per-slot accounting matches
the abstract :class:`~repro.sim.system.MultiprocessorSystem` (tested),
while adding chip-level utilization the abstract mode cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.manager import DynamicPowerManager
from ..hw.board import PamaBoard
from ..models.battery import Battery, BatterySpec
from ..models.sources import ChargingSource
from ..workloads.taskgraph import TaskGraph
from ..workloads.generator import EventTrace

__all__ = ["MissionSlot", "MissionReport", "MissionExecutor"]


@dataclass(frozen=True)
class MissionSlot:
    """One interval of a mission run."""

    slot: int
    n_active: int
    frequency: float
    arrivals: float
    completed: float
    backlog: float
    busy_fraction: float  #: fraction of the slot the workers computed
    board_power: float
    battery_level: float


@dataclass(frozen=True)
class MissionReport:
    """Whole-mission reductions."""

    slots: tuple[MissionSlot, ...]
    events_arrived: float
    events_completed: float
    final_backlog: float
    chip_energy: float  #: Σ per-chip energy (J)
    wasted_energy: float
    undersupplied_energy: float
    worker_busy_cycles: float  #: total cycles retired by workers
    mean_worker_utilization: float  #: busy time / active time across the run

    @property
    def service_ratio(self) -> float:
        if self.events_arrived == 0:
            return 1.0
        return self.events_completed / self.events_arrived


class MissionExecutor:
    """Run a planned manager + event stream on the board, cycle-accurately."""

    def __init__(
        self,
        board: PamaBoard,
        manager: DynamicPowerManager,
        source: ChargingSource,
        spec: BatterySpec,
        task: TaskGraph,
        events: EventTrace,
    ):
        if board.n_workers < manager.frontier.max_perf_point.n:
            raise ValueError(
                "board has fewer workers than the manager's frontier assumes"
            )
        if abs(events.tau - manager.grid.tau) > 1e-9:
            raise ValueError("event trace and manager grid must share tau")
        self.board = board
        self.manager = manager
        self.source = source
        self.spec = spec
        self.task = task
        self.events = events

    # ------------------------------------------------------------------
    def _slot_capacity(self, n_active: int, frequency: float, tau: float) -> float:
        """Events completable in one slot at the given setting."""
        if n_active == 0:
            return 0.0
        per_event = self.task.execution_time(n_active, frequency)
        return tau / per_event

    def run(self, n_slots: int | None = None) -> MissionReport:
        n_slots = self.events.n_slots if n_slots is None else int(n_slots)
        if n_slots > self.events.n_slots:
            raise ValueError("event trace shorter than the requested run")
        tau = self.manager.grid.tau
        if self.manager.allocation is None:
            self.manager.plan()
        self.manager.start()
        battery = Battery(self.spec)
        backlog = 0.0
        rows: list[MissionSlot] = []
        busy_time = active_time = 0.0
        energy_before = self.board.total_energy()
        cycles_before = sum(w.busy_cycles for w in self.board.workers)

        for k in range(n_slots):
            point = self.manager.decide()
            self.board.apply_setting(point.n, point.f)
            self.board.meter.sample(self.board.now)

            arrivals = float(self.events.counts[k])
            available = backlog + arrivals
            capacity = self._slot_capacity(point.n, point.f, tau)

            board_power = self.board.total_power()
            supplied = self.source.actual_slot_energy(self.board.now) / tau
            step = battery.step(supplied, board_power, tau)
            served_fraction = (
                step.drawn / (board_power * tau) if board_power > 0 else 1.0
            )
            capacity *= served_fraction

            completed = min(available, capacity)
            backlog = available - completed
            busy = 0.0 if capacity == 0 else completed / capacity
            # charge the chips: active workers burn the whole slot's power,
            # but only `busy` of it retires work cycles (the M32R/D has no
            # sub-slot clock gating — matching the power model)
            self.board.run_for(tau, busy_fraction=busy)

            if point.n > 0:
                busy_time += busy * tau * point.n
                active_time += tau * point.n

            self.manager.advance(
                used_power=sum(
                    w.power for w in self.board.workers if w.is_active
                )
                * served_fraction,
                supplied_power=supplied,
            )
            rows.append(
                MissionSlot(
                    slot=k,
                    n_active=point.n,
                    frequency=point.f,
                    arrivals=arrivals,
                    completed=completed,
                    backlog=backlog,
                    busy_fraction=busy,
                    board_power=board_power,
                    battery_level=step.level,
                )
            )

        return MissionReport(
            slots=tuple(rows),
            events_arrived=float(self.events.counts[:n_slots].sum()),
            events_completed=float(sum(r.completed for r in rows)),
            final_backlog=backlog,
            chip_energy=self.board.total_energy() - energy_before,
            wasted_energy=battery.total_wasted,
            undersupplied_energy=battery.total_undersupplied,
            worker_busy_cycles=sum(w.busy_cycles for w in self.board.workers)
            - cycles_before,
            mean_worker_utilization=(
                busy_time / active_time if active_time > 0 else 0.0
            ),
        )
