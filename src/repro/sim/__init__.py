"""Discrete-event simulation substrate."""

from .engine import SimEvent, SimulationEngine
from .tracing import SimSummary, SimTrace, SlotRecord
from .system import MultiprocessorSystem, Policy, SlotOutcome, SlotState
from .controller import ManagerPolicy
from .board_runner import BoardRunner, BoardRunResult, BoardSlot
from .mission import MissionExecutor, MissionReport, MissionSlot

__all__ = [
    "SimulationEngine",
    "SimEvent",
    "SimTrace",
    "SlotRecord",
    "SimSummary",
    "MultiprocessorSystem",
    "Policy",
    "SlotState",
    "SlotOutcome",
    "ManagerPolicy",
    "BoardRunner",
    "BoardRunResult",
    "BoardSlot",
    "MissionExecutor",
    "MissionReport",
    "MissionSlot",
]
