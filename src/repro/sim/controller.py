"""The controller-processor policy: the proposed algorithm, on-line.

The paper dedicates one of the eight PIM chips to running the power
manager: it computes ``P_init``, updates it each interval, and commands
the workers.  :class:`ManagerPolicy` is that chip's software — it adapts
:class:`~repro.core.manager.DynamicPowerManager` to the simulator's
:class:`~repro.sim.system.Policy` interface, feeding the *measured* used
and supplied power of each slot into Algorithm 3.
"""

from __future__ import annotations

import math

from ..core.manager import DynamicPowerManager
from ..core.pareto import OperatingPoint
from .system import SlotOutcome, SlotState

__all__ = ["ManagerPolicy"]


class ManagerPolicy:
    """The proposed dynamic power-management algorithm as a simulator policy.

    Parameters
    ----------
    manager:
        A configured (not necessarily planned) manager.
    controller_power:
        Draw of the controller chip itself (W).  The manager budgets the
        *worker pool*; the simulator adds the controller on top, so the
        policy subtracts it from the observed usage before reconciling.
    """

    def __init__(self, manager: DynamicPowerManager, *, controller_power: float = 0.0):
        if controller_power < 0:
            raise ValueError("controller_power must be non-negative")
        self.manager = manager
        self.controller_power = float(controller_power)
        self.name = "proposed"
        self._pending_decision: OperatingPoint | None = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        if self.manager.allocation is None:
            self.manager.plan()
        self.manager.start()
        self._pending_decision = None

    def decide(self, state: SlotState) -> OperatingPoint:
        self._pending_decision = self.manager.decide()
        return self._pending_decision

    def observe(self, outcome: SlotOutcome) -> None:
        # Reconcile against what the worker pool really drew and what the
        # source really delivered (Section 4.3: P_actual in Algorithm 3
        # "is the real power used for the previous computations").
        worker_power = max(outcome.delivered_power - self.controller_power, 0.0)
        self.manager.advance(
            used_power=worker_power,
            supplied_power=outcome.supplied_power,
        )
        self._pending_decision = None

    def allocated_power(self) -> float:
        window = self.manager.window
        return float(window[0]) if window.size else math.nan
