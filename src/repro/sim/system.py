"""Slot-synchronous multiprocessor-system simulation.

Brings together the pieces the paper's Section 5 simulation has: the
external source charging a bounded battery, events arriving and queueing,
and a *policy* choosing the multiprocessor operating point every ``τ``.
Each slot:

1. the policy sees the state (battery, backlog, arrivals forecast) and
   picks an :class:`~repro.core.pareto.OperatingPoint`;
2. the source delivers its actual energy and the battery integrates the
   flows, splitting them into served / wasted / undersupplied exactly
   (see :class:`~repro.models.battery.Battery`);
3. the event queue drains at the throughput of the chosen point (scaled
   down if the battery could not serve the full draw);
4. the policy observes the measured outcome — the hook the proposed
   policy uses to run Algorithm 3.

The loop runs on the discrete-event engine so board-level sub-slot events
(frequency-change wakeups) share the same timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..core.pareto import OperatingPoint
from ..models.battery import Battery, BatterySpec
from ..models.performance import PerformanceModel
from ..models.sources import ChargingSource
from ..util.timegrid import TimeGrid
from ..workloads.generator import EventTrace
from .engine import SimulationEngine
from .tracing import SimTrace, SlotRecord

__all__ = ["SlotState", "SlotOutcome", "Policy", "MultiprocessorSystem"]


@dataclass(frozen=True)
class SlotState:
    """What a policy may look at before deciding (no oracle access)."""

    slot: int
    time: float
    battery_level: float
    backlog: float  #: events queued from previous slots
    expected_charging: float  #: planner's forecast for this slot (W)
    expected_arrivals: float  #: forecast arrivals this slot


@dataclass(frozen=True)
class SlotOutcome:
    """What actually happened, reported back to the policy."""

    slot: int
    used_power: float  #: demanded draw (W)
    delivered_power: float  #: served draw (W)
    supplied_power: float  #: actual external supply (W)
    wasted_energy: float
    undersupplied_energy: float
    battery_level: float
    processed: float


@runtime_checkable
class Policy(Protocol):
    """The decision interface every power-management policy implements."""

    name: str

    def reset(self) -> None:
        """Prepare for a fresh run (re-plan, zero internal state)."""

    def decide(self, state: SlotState) -> OperatingPoint:
        """Choose the operating point for the coming slot."""

    def observe(self, outcome: SlotOutcome) -> None:
        """Receive the measured outcome of the slot just simulated."""

    def allocated_power(self) -> float:
        """Current planned power (NaN for plan-free policies)."""


class MultiprocessorSystem:
    """The simulated platform: source + battery + queue + policy.

    Parameters
    ----------
    grid:
        Slotting (``τ``, ``T``).
    source:
        External charging source (expected + actual faces).
    spec:
        Battery description.
    perf_model:
        Used to convert operating points into event throughput.
    events:
        Arrival counts per slot (length = number of slots to simulate).
    expected_events:
        The planner's forecast trace (defaults to ``events`` — a perfect
        forecast).
    controller_power:
        Constant draw of the always-on controller chip (W), added on top
        of every operating point including the parked one.
    """

    def __init__(
        self,
        grid: TimeGrid,
        source: ChargingSource,
        spec: BatterySpec,
        perf_model: PerformanceModel,
        events: EventTrace,
        *,
        expected_events: EventTrace | None = None,
        controller_power: float = 0.0,
    ):
        if controller_power < 0:
            raise ValueError("controller_power must be non-negative")
        self.grid = grid
        self.source = source
        self.spec = spec
        self.perf_model = perf_model
        self.events = events
        self.expected_events = expected_events or events
        if self.expected_events.n_slots < events.n_slots:
            raise ValueError("expected-event trace shorter than the actual trace")
        self.controller_power = float(controller_power)

    # ------------------------------------------------------------------
    def throughput(self, point: OperatingPoint) -> float:
        """Events per second at an operating point."""
        if point.n == 0 or point.f == 0:
            return 0.0
        return self.perf_model.throughput(point.n, point.f, point.v or None)

    # ------------------------------------------------------------------
    def run(self, policy: Policy, n_slots: int | None = None) -> SimTrace:
        """Simulate ``n_slots`` intervals (default: the event trace length)."""
        n_slots = self.events.n_slots if n_slots is None else int(n_slots)
        if n_slots > self.events.n_slots:
            raise ValueError("event trace shorter than the requested run")
        tau = self.grid.tau
        engine = SimulationEngine()
        battery = Battery(self.spec)
        trace = SimTrace(tau)
        policy.reset()
        backlog = 0.0
        expected_c = self.source.expected()

        def do_slot(k: int) -> None:
            nonlocal backlog
            t = engine.now
            arrivals = float(self.events.counts[k])
            state = SlotState(
                slot=k,
                time=t,
                battery_level=battery.level,
                backlog=backlog,
                expected_charging=expected_c(t),
                expected_arrivals=float(self.expected_events.counts[k]),
            )
            point = policy.decide(state)
            allocated = policy.allocated_power()

            demanded = point.power + self.controller_power
            supplied = self.source.actual_slot_energy(t) / tau
            result = battery.step(supplied, demanded, tau)

            # throughput degrades with the served fraction of the demand
            served_fraction = (
                result.drawn / (demanded * tau) if demanded > 0 else 1.0
            )
            capacity = self.throughput(point) * tau * served_fraction
            available = backlog + arrivals
            processed = min(available, capacity)
            backlog = available - processed

            outcome = SlotOutcome(
                slot=k,
                used_power=demanded,
                delivered_power=result.drawn / tau,
                supplied_power=supplied,
                wasted_energy=result.wasted,
                undersupplied_energy=result.undersupplied,
                battery_level=result.level,
                processed=processed,
            )
            policy.observe(outcome)
            trace.append(
                SlotRecord(
                    slot=k,
                    time=t,
                    allocated_power=allocated,
                    n_active=point.n,
                    frequency=point.f,
                    used_power=demanded,
                    delivered_power=result.drawn / tau,
                    supplied_power=supplied,
                    wasted_energy=result.wasted,
                    undersupplied_energy=result.undersupplied,
                    battery_level=result.level,
                    arrivals=arrivals,
                    processed=processed,
                    backlog=backlog,
                )
            )

        for k in range(n_slots):
            engine.at(k * tau, lambda k=k: do_slot(k))
        engine.run()
        return trace
