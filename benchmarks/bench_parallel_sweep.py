"""Parallel batch runner vs. the serial sweep — the speedup artifact.

Runs one ≥24-cell grid (scenarios × supply-factor knob × policy) both ways:

* **serial** — the legacy path: every cell evaluated in-process with the
  allocation memo disabled, so each cell re-plans from scratch exactly as
  ``sweep_scenarios`` did before the batch runner existed;
* **parallel** — ``run_grid`` with 4 workers: unique scenario plans are
  computed once in the parent, shipped to the workers, and every cell's
  Algorithm-1 lookup hits the content-addressed memo.

The grid deliberately includes battery-tight scenario variants whose
allocation iterates to the greedy fallback — the planning-heavy regime the
memo exists for.  Writes ``BENCH_parallel_sweep.json`` next to the repo
root with both wall times, the speedup, the cache hit rate, and the
row-identity verdict; asserts the contract the batch subsystem promises:
bit-identical rows, hit rate > 0, and ≥ 2× speedup.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from conftest import emit

from repro.analysis.batch import CellSpec, run_grid
from repro.core.allocation import clear_allocation_cache
from repro.models.battery import BatterySpec
from repro.scenarios.paper import PaperScenario, pama_frontier, scenario1, scenario2

N_WORKERS = 4
N_PERIODS = 1
SUPPLY_FACTORS = [round(1.0 - 0.025 * k, 3) for k in range(16)]
CAPACITY_FACTORS = [0.5, 0.4, 0.3, 0.25]  # battery-tight (fallback-planning) variants
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_sweep.json"


def _tight(base: PaperScenario, capacity_factor: float) -> PaperScenario:
    """A battery-tight variant: same schedules, shrunken capacity window."""
    spec = BatterySpec(
        c_max=base.spec.c_max * capacity_factor,
        c_min=base.spec.c_min,
        initial=base.spec.c_min,
    )
    return PaperScenario(
        name=f"{base.name}-cap{capacity_factor}",
        charging=base.charging,
        event_demand=base.event_demand,
        spec=spec,
    )


def build_grid() -> list[CellSpec]:
    """6 scenarios × 16 supply factors × 2 policies = 192 cells.

    Cells of one scenario are adjacent so worker chunks inherit allocation-
    cache locality; the supply factor leaves the planning problem untouched,
    which is exactly the redundancy the memo removes.  The tight-battery
    variants spend most of their cell time in Algorithm-1 iteration plus the
    greedy fallback, the planning-heavy regime large characterization
    sweeps live in.
    """
    scenarios = [scenario1(), scenario2()] + [
        _tight(scenario2(), f) for f in CAPACITY_FACTORS
    ]
    return [
        CellSpec(
            scenario=sc,
            policy=policy,
            knob=factor,
            n_periods=N_PERIODS,
            supply_factor=factor,
        )
        for sc in scenarios
        for factor in SUPPLY_FACTORS
        for policy in ("proposed", "static")
    ]


def _rows_bit_identical(serial, parallel) -> bool:
    if len(serial.outcomes) != len(parallel.outcomes):
        return False
    for a, b in zip(serial.cells, parallel.cells):
        if a.row() != b.row():
            return False
        if not np.array_equal(a.result.delivered_power, b.result.delivered_power):
            return False
        if not np.array_equal(a.result.battery_level, b.result.battery_level):
            return False
        if not np.array_equal(a.result.used_power, b.result.used_power):
            return False
    return True


def run_comparison():
    frontier = pama_frontier()
    cells = build_grid()

    clear_allocation_cache()
    serial = run_grid(cells, frontier, n_workers=None, cache=False)

    clear_allocation_cache()
    parallel = run_grid(cells, frontier, n_workers=N_WORKERS, cache=True)

    return cells, serial, parallel


def bench_parallel_sweep(frontier):
    cells, serial, parallel = run_comparison()
    speedup = serial.wall_s / parallel.wall_s
    identical = _rows_bit_identical(serial, parallel)

    report = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "grid": {
            "n_cells": len(cells),
            "scenarios": sorted({c.scenario.name for c in cells}),
            "policies": sorted({c.policy for c in cells}),
            "supply_factors": SUPPLY_FACTORS,
            "n_periods": N_PERIODS,
        },
        "serial": {
            "wall_s": serial.wall_s,
            "n_workers": serial.n_workers,
            "cache_enabled": serial.cache_enabled,
        },
        "parallel": {
            "wall_s": parallel.wall_s,
            "warm_s": parallel.warm_s,
            "n_workers": parallel.n_workers,
            "chunksize": parallel.chunksize,
            "cache_enabled": parallel.cache_enabled,
            "cache_hits": parallel.cache_hits,
            "cache_misses": parallel.cache_misses,
            "cache_hit_rate": parallel.cache_hit_rate,
        },
        "speedup": speedup,
        "rows_bit_identical": identical,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    emit(
        "Parallel sweep — {n} cells, {w} workers\n"
        "  serial (uncached): {s:.3f} s\n"
        "  parallel (cached): {p:.3f} s  (warm {warm:.3f} s)\n"
        "  speedup: {x:.2f}x · cache hit rate {hr:.2f} "
        "({h} hits / {m} misses)\n"
        "  rows bit-identical: {ident}\n"
        "  report: {path}".format(
            n=len(cells),
            w=N_WORKERS,
            s=serial.wall_s,
            p=parallel.wall_s,
            warm=parallel.warm_s,
            x=speedup,
            hr=parallel.cache_hit_rate,
            h=parallel.cache_hits,
            m=parallel.cache_misses,
            ident=identical,
            path=REPORT_PATH.name,
        )
    )

    assert identical, "parallel rows must be bit-identical to serial rows"
    assert parallel.cache_hit_rate > 0, "the allocation memo never hit"
    assert speedup >= 2.0, (
        f"parallel sweep only {speedup:.2f}x faster than serial "
        f"({serial.wall_s:.3f}s -> {parallel.wall_s:.3f}s)"
    )
