"""Shared benchmark fixtures and the paper-row printer.

Every bench regenerates one table or figure of the paper (or an ablation
DESIGN.md calls out) and *prints the rows the paper reports* once, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
log.  The timed body is the computation that produces the artifact.
"""

from __future__ import annotations

import sys

import pytest

from repro.scenarios.paper import pama_frontier, scenario1, scenario2


def emit(text: str) -> None:
    """Print a reproduction artifact once, bypassing capture noise."""
    sys.stderr.write("\n" + text + "\n")


@pytest.fixture(scope="session")
def frontier():
    return pama_frontier()


@pytest.fixture(scope="session")
def sc1():
    return scenario1()


@pytest.fixture(scope="session")
def sc2():
    return scenario2()
