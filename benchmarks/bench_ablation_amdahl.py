"""Ablation — the Eq. 14/17 Amdahl crossover.

Sweeps the workload's serial fraction and reports, for a DVFS-capable
system, the continuous-optimum processor count at a fixed power budget
(Eq. 18) and the crossover ``n* = 2(Tt/Ts − 1)``.  Shape: more serial ⇒
fewer processors and more frequency; perfectly parallel ⇒ processors
bounded only by the budget.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import format_table
from repro.core.continuous import optimal_parameters
from repro.models.performance import PerformanceModel
from repro.models.power import PowerModel
from repro.models.voltage import LinearVFMap

SERIAL_FRACTIONS = [0.0, 0.02, 0.05, 0.1, 0.2, 0.4]
BUDGET_W = 0.5


def sweep():
    vf = LinearVFMap(v_min=0.6, v_max=1.8, slope=100e6, v_threshold=0.3)
    power = PowerModel(c2=1e-10)
    rows = []
    for s in SERIAL_FRACTIONS:
        perf = PerformanceModel(
            t_total=1.0, t_serial=s, f_ref=50e6, vf_map=vf
        )
        point = optimal_parameters(BUDGET_W, perf, power, n_max=64)
        n_star = perf.optimal_processor_count
        rows.append(
            (
                s,
                "inf" if n_star == float("inf") else round(n_star, 1),
                round(point.n, 2),
                round(point.f / 1e6, 1),
                point.regime,
            )
        )
    return rows


def bench_ablation_amdahl(benchmark):
    rows = benchmark(sweep)
    emit(
        format_table(
            ["serial fraction", "n* (Eq.17)", "n chosen", "f (MHz)", "regime"],
            rows,
            title=f"Ablation — Amdahl crossover at {BUDGET_W} W (Eq. 18)",
        )
    )
    ns = [r[2] for r in rows]
    # more serial fraction ⇒ never more processors
    assert all(b <= a + 1e-9 for a, b in zip(ns, ns[1:]))
    fs = [r[3] for r in rows]
    # and the freed budget goes into frequency
    assert fs[-1] >= fs[0]
