"""Ablation — Eq. 18 continuous optimum vs. Algorithm 2 discrete choice.

Sweeps power budgets over the PAMA range and compares the performance of
the continuous closed form against the discrete frontier pick.  Shape:
discrete ≤ continuous everywhere (the continuous point is an upper
bound), with the gap largest just below each frontier step.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.report import format_table
from repro.core.continuous import optimal_parameters
from repro.scenarios.paper import (
    N_WORKERS,
    pama_performance_model,
    pama_power_model,
)

# start above the cheapest active point (0.0983 W): below it the discrete
# system can only park and the gap is trivially 100%
BUDGETS_W = np.linspace(0.12, 2.8, 12)


def sweep(frontier):
    perf_model = pama_performance_model()
    power_model = pama_power_model(include_standby_floor=False)
    rows = []
    for budget in BUDGETS_W:
        cont = optimal_parameters(budget, perf_model, power_model, n_max=N_WORKERS)
        disc = frontier.best_within_power(budget)
        gap = 0.0 if cont.perf == 0 else (cont.perf - disc.perf) / cont.perf
        rows.append(
            (
                round(float(budget), 3),
                round(cont.n, 2),
                round(cont.f / 1e6, 1),
                disc.n,
                round(disc.f / 1e6, 1),
                round(100 * gap, 1),
            )
        )
    return rows


def bench_continuous_vs_discrete(benchmark, frontier):
    rows = benchmark(sweep, frontier)
    emit(
        format_table(
            ["budget (W)", "n cont", "f cont (MHz)", "n disc", "f disc (MHz)", "gap (%)"],
            rows,
            title="Eq. 18 continuous optimum vs. Algorithm 2 discrete pick",
        )
    )
    # discrete never beats the continuous upper bound
    assert all(r[5] >= -1e-6 for r in rows)
    # and the quantization gap stays bounded across the range
    assert max(r[5] for r in rows) < 60.0
