"""Table 1 — Comparison of algorithms (proposed vs. static, both scenarios).

Paper values (J, two periods):

    scenario1 proposed: wasted 13.68, undersupplied 23.11
    scenario1 static:   wasted 40.93, undersupplied 39.33
    scenario2 proposed: wasted  6.18, undersupplied  6.27
    scenario2 static:   wasted 69.33, undersupplied 67.91

Expected shape: proposed cuts wasted energy ≥3× in scenario I and ≈10× in
scenario II, and (nearly) eliminates undersupply of its own plan.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import table1


def bench_table1(benchmark):
    result = benchmark(table1)
    emit(result.text())
    # shape assertions guard the benchmark from regressing silently
    for scenario in ("scenario1", "scenario2"):
        proposed = result.row(scenario, "proposed")
        static = result.row(scenario, "static")
        assert proposed.wasted < static.wasted / 3.0
        assert proposed.undersupplied < static.undersupplied
