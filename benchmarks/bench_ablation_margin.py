"""Ablation — supply-margin robustness (extension).

Planning against a derated charging forecast hedges forecast risk: the
real supply then arrives as surplus Algorithm 3 spends safely.  This
bench runs the manager on scenario I with the *actual* supply 25% below
the (undecorated) forecast, sweeping the planning margin.  Shape: tighter
margins cut undersupply monotonically toward zero; the cost is delivered
energy left on the table when the forecast was actually right.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.report import format_table
from repro.core.manager import DynamicPowerManager
from repro.models.battery import Battery
from repro.scenarios.paper import pama_frontier

MARGINS = [1.0, 0.9, 0.8, 0.7]
ACTUAL_FACTOR = 0.75  # the real panel output vs. the raw forecast
N_PERIODS = 3


def run_with_margin(sc1, frontier, margin: float, actual_factor: float):
    manager = DynamicPowerManager(
        sc1.charging,
        sc1.event_demand,
        sc1.weight(),
        frontier=frontier,
        spec=sc1.spec,
        supply_margin=margin,
    )
    manager.start()
    battery = Battery(sc1.spec)
    tau = sc1.grid.tau
    n = sc1.grid.n_slots
    for k in range(N_PERIODS * n):
        point = manager.decide()
        supplied = sc1.charging[k % n] * actual_factor
        step = battery.step(supplied, point.power, tau)
        manager.advance(used_power=step.drawn / tau, supplied_power=supplied)
    return battery


def sweep(sc1, frontier):
    rows = []
    for margin in MARGINS:
        b = run_with_margin(sc1, frontier, margin, ACTUAL_FACTOR)
        rows.append(
            (margin, b.total_undersupplied, b.total_wasted, b.total_drawn)
        )
    return rows


def bench_ablation_margin(benchmark, sc1, frontier):
    rows = benchmark(sweep, sc1, frontier)
    emit(
        format_table(
            ["planning margin", "undersupplied (J)", "wasted (J)", "delivered (J)"],
            rows,
            title=(
                "Ablation — supply-margin hedge "
                f"(actual supply at {ACTUAL_FACTOR:.0%} of forecast, "
                f"{N_PERIODS} periods)"
            ),
        )
    )
    under = [r[1] for r in rows]
    # tighter margins never increase undersupply, and derating at/below
    # the actual shortfall (0.7 ≤ 0.75) essentially eliminates it
    assert all(b <= a + 1e-6 for a, b in zip(under, under[1:]))
    assert under[-1] < max(under[0], 1.0) / 2 + 1e-9
