"""Performance harness — planner cost vs. problem size.

The paper's controller is one 20 MHz chip; the planner must stay cheap.
This bench times the three pipeline stages (Algorithm 1 allocation,
frontier construction, Algorithm 2 planning) as the number of slots and
processors grows, so regressions in algorithmic complexity show up as
benchmark deltas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.allocation import allocate
from repro.core.pareto import OperatingFrontier
from repro.core.parameters import plan_parameters
from repro.core.wpuf import desired_usage
from repro.models.battery import BatterySpec
from repro.scenarios.paper import (
    FREQUENCIES_HZ,
    pama_performance_model,
    pama_power_model,
)
from repro.util.schedule import Schedule
from repro.util.timegrid import TimeGrid


def make_problem(n_slots: int):
    grid = TimeGrid(period=float(n_slots), tau=1.0)
    t = np.arange(n_slots)
    charging = Schedule(grid, 2.0 + 1.5 * np.sin(2 * np.pi * t / n_slots))
    demand = Schedule(grid, 1.5 + 1.2 * np.cos(4 * np.pi * t / n_slots + 0.7))
    spec = BatterySpec(c_max=8.0, c_min=0.2, initial=0.2)
    return grid, charging, demand, spec


@pytest.mark.parametrize("n_slots", [12, 96, 384])
def bench_allocation_scaling(benchmark, n_slots):
    grid, charging, demand, spec = make_problem(n_slots)
    u_new = desired_usage(demand, Schedule.constant(grid, 1.0), charging)

    def run():
        return allocate(charging, u_new, spec, usage_ceiling=4.0)

    result = benchmark(run)
    assert result.feasible


@pytest.mark.parametrize("n_processors", [7, 32, 128])
def bench_frontier_scaling(benchmark, n_processors):
    perf = pama_performance_model()
    power = pama_power_model(include_standby_floor=False)

    def run():
        return OperatingFrontier.build(n_processors, FREQUENCIES_HZ, perf, power)

    frontier = benchmark(run)
    assert len(frontier) >= 2


@pytest.mark.parametrize("n_slots", [12, 96, 384])
def bench_parameter_planning_scaling(benchmark, n_slots):
    grid, charging, demand, spec = make_problem(n_slots)
    u_new = desired_usage(demand, Schedule.constant(grid, 1.0), charging)
    alloc = allocate(charging, u_new, spec, usage_ceiling=4.0)
    perf = pama_performance_model()
    power = pama_power_model(include_standby_floor=False)
    frontier = OperatingFrontier.build(16, FREQUENCIES_HZ, perf, power)

    def run():
        return plan_parameters(alloc.usage.values, frontier, tau=1.0)

    sched = benchmark(run)
    assert len(sched) == n_slots
