"""Table 3 — Dynamic update of the power allocation, scenario I.

Two periods (24 rows) of the run-time loop: allocation at decision time,
the quantized used power, the supplied power, and the Algorithm 3-updated
window Pinit(0..11).  Shape: used power tracks the allocation from below
(frontier quantization), the battery never leaves [C_min, C_max], and
every row's window reflects the deviation of that slot.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.tables import runtime_table


def bench_table3_runtime_scenario1(benchmark, sc1, frontier):
    result = benchmark(runtime_table, sc1, n_periods=2, frontier=frontier)
    emit(result.text())
    assert len(result.rows) == 24
    levels = {round(p.power, 6) for p in frontier.points}
    for row in result.rows:
        assert round(row.used_power, 6) in levels  # quantized like the paper
        assert sc1.spec.c_min - 1e-9 <= row.battery_level <= sc1.spec.c_max + 1e-9
    supplied = [r.supplied_power for r in result.rows[:12]]
    np.testing.assert_allclose(supplied, sc1.charging.values)
