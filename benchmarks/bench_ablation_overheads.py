"""Ablation — switching overheads (Algorithm 2 lines 14–22).

The paper's evaluation assumes free switching ("we assumed no overheads
for changing the number of processors and frequency"); the algorithm's
gating only matters when OH_n/OH_f are nonzero.  This bench sweeps the
per-change energy and reports switch counts and delivered performance:
as overheads grow the plan must switch less, trading a little performance
for the saved transition energy.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.report import format_table
from repro.core.allocation import allocate
from repro.core.parameters import SwitchingOverheads, plan_parameters
from repro.core.wpuf import desired_usage


OVERHEADS_J = [0.0, 0.05, 0.2, 0.8, 3.2]


def sweep(sc1, frontier):
    u_new = desired_usage(sc1.event_demand, sc1.weight(), sc1.charging)
    alloc = allocate(sc1.charging, u_new, sc1.spec, usage_ceiling=frontier.max_power)
    pinit = np.tile(alloc.usage.values, 4)  # 4 periods to expose steady state
    rows = []
    for oh in OVERHEADS_J:
        sched = plan_parameters(
            pinit,
            frontier,
            tau=sc1.grid.tau,
            overheads=SwitchingOverheads(
                per_processor_change=oh, per_frequency_change=oh
            ),
        )
        rows.append(
            (
                oh,
                sched.switch_count(),
                sched.total_perf() / 1e6,
                sched.total_energy(),
            )
        )
    return rows


def bench_ablation_overheads(benchmark, sc1, frontier):
    rows = benchmark(sweep, sc1, frontier)
    emit(
        format_table(
            ["overhead (J/change)", "switches", "perf (M·s)", "energy (J)"],
            rows,
            title="Ablation — switching-overhead gating (scenario I, 4 periods)",
        )
    )
    switches = [r[1] for r in rows]
    # monotone-ish: heavy overheads must reduce switching
    assert switches[-1] < switches[0]
    # and free switching must deliver at least as much performance
    assert rows[0][2] >= rows[-1][2] - 1e-9
