"""Ablation — value of the Algorithm 3 run-time update.

Runs the proposed plan under systematic supply error (actual = 80% of
forecast) twice: once with the run-time reallocation active (the full
manager loop) and once replaying the *static plan* open-loop (the
quantized Algorithm 2 schedule with no feedback).  Shape: feedback keeps
battery-level undersupply near zero; the open-loop replay crashes into
C_min and undersupplies.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.energy import run_managed
from repro.analysis.report import format_table
from repro.core.manager import DynamicPowerManager
from repro.models.battery import Battery

SUPPLY_FACTOR = 0.8
N_PERIODS = 3


def open_loop_replay(scenario, frontier):
    """Replay the nominal Algorithm 2 schedule with no Algorithm 3."""
    manager = DynamicPowerManager(
        scenario.charging,
        scenario.event_demand,
        scenario.weight(),
        frontier=frontier,
        spec=scenario.spec,
    )
    _, schedule = manager.plan()
    battery = Battery(scenario.spec)
    tau = scenario.grid.tau
    n = scenario.grid.n_slots
    for k in range(N_PERIODS * n):
        point = schedule[k % n].point
        supplied = scenario.charging[k % n] * SUPPLY_FACTOR
        battery.step(supplied, point.power, tau)
    return battery


def closed_vs_open(scenarios, frontier):
    rows = []
    for sc in scenarios:
        closed = run_managed(
            sc, frontier, n_periods=N_PERIODS, supply_factor=SUPPLY_FACTOR
        )
        open_b = open_loop_replay(sc, frontier)
        rows.append(
            (
                sc.name,
                closed.undersupplied,
                open_b.total_undersupplied,
                closed.wasted,
                open_b.total_wasted,
            )
        )
    return rows


def bench_ablation_runtime_update(benchmark, sc1, sc2, frontier):
    rows = benchmark(closed_vs_open, (sc1, sc2), frontier)
    emit(
        format_table(
            [
                "scenario",
                "closed-loop under (J)",
                "open-loop under (J)",
                "closed-loop wasted (J)",
                "open-loop wasted (J)",
            ],
            rows,
            title=(
                "Ablation — Algorithm 3 feedback under a 20% supply "
                f"shortfall ({N_PERIODS} periods)"
            ),
        )
    )
    for _, closed_u, open_u, _, _ in rows:
        # feedback strictly reduces undersupply under systematic error
        assert closed_u < open_u
