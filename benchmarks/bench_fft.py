"""Workload harness — fixed-point FFT throughput and accuracy.

Times the Q15 radix-2 transform across sizes (including the paper's 2K
calibration size) and reports the relative error against numpy's float
FFT — the accuracy the on-board detector actually gets.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.fft import fft_q15, fft_q15_to_complex
from repro.workloads.fixedpoint import from_q15, to_q15


@pytest.mark.parametrize("n", [256, 2048, 8192])
def bench_fft_q15(benchmark, n):
    rng = np.random.default_rng(n)
    q = to_q15(rng.uniform(-0.9, 0.9, n))
    re, im, scale = benchmark(fft_q15, q)
    assert scale == int(np.log2(n))


def bench_fft_accuracy_report(benchmark):
    def accuracy_rows():
        rows = []
        rng = np.random.default_rng(0)
        for n in (64, 256, 1024, 2048):
            x = rng.uniform(-0.9, 0.9, n)
            q = to_q15(x)
            ours = fft_q15_to_complex(q)
            ref = np.fft.fft(from_q15(q))
            rel = float(np.max(np.abs(ours - ref)) / np.max(np.abs(ref)))
            rows.append((n, f"{rel:.2e}"))
        return rows

    rows = benchmark(accuracy_rows)
    emit(
        format_table(
            ["N", "max rel error vs numpy"],
            rows,
            title="Fixed-point FFT accuracy (Q15, per-stage scaling)",
        )
    )
    # 2K-point error stays within ~1% — fine for band-energy classification
    assert float(rows[-1][1]) < 0.02
