"""Table 2 — Initial power allocation computation, scenario I.

Paper: the allocation iterates until the integration (battery trajectory)
respects the minimum requirement 0.098 W·τ; five iterations suffice, and
the converged trajectory clamps at 3.54 W·τ.  Iteration 1 must match the
paper's printed row (the Eq. 8-normalized demand).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.tables import allocation_table


def bench_table2_allocation_scenario1(benchmark, sc1):
    result = benchmark(allocation_table, sc1)
    emit(result.text())
    assert result.feasible
    paper_iteration1 = [1.89, 1.21, 0.32, 0.32, 1.21, 2.03,
                        1.90, 1.21, 0.32, 0.32, 1.21, 2.03]
    np.testing.assert_allclose(result.pinit_rows[0], paper_iteration1, atol=0.05)
    final = np.asarray(result.integration_rows[-1])
    np.testing.assert_allclose(final.max(), 3.54, atol=0.02)
    np.testing.assert_allclose(final.min(), 0.098, atol=0.02)
