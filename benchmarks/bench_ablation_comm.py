"""Ablation — communication cost (paper footnote 2).

"The cost of communication is ignored … the simplified model does not
limit the applicability of the algorithms presented in this paper except
Equation (18)."  This bench quantifies that exception: with
scatter/gather riding the FPGA ring, the useful worker count at full
power is capped below the budgeted count, and past the cap extra
processors *reduce* throughput while still burning their wattage.

Sweeps the per-worker ring cost and reports, at the flat-out operating
point, the optimal worker count and the throughput loss of naively using
all seven.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.comm import CommAwareTask
from repro.workloads.taskgraph import fft_task_graph

HOP_COSTS_S = [0.0, 0.02, 0.05, 0.1, 0.2, 0.4]
F = 80e6
N_MAX = 7


def sweep():
    rows = []
    for hop in HOP_COSTS_S:
        task = CommAwareTask(
            fft_task_graph(2048, serial_fraction=0.10), f_ref=20e6, comm_hop_s=hop
        )
        n_opt = task.optimal_workers(F, N_MAX)
        tp_opt = task.throughput(n_opt, F)
        tp_all = task.throughput(N_MAX, F)
        rows.append(
            (
                hop,
                n_opt,
                round(tp_opt, 3),
                round(tp_all, 3),
                round(100 * (1 - tp_all / tp_opt), 1),
            )
        )
    return rows


def bench_ablation_comm(benchmark):
    rows = benchmark(sweep)
    emit(
        format_table(
            [
                "ring hop cost (s)",
                "optimal n",
                "throughput@n_opt (ev/s)",
                "throughput@7 (ev/s)",
                "naive-7 loss (%)",
            ],
            rows,
            title="Ablation — communication cost on the ring (footnote 2), 80 MHz",
        )
    )
    n_opts = [r[1] for r in rows]
    # free communication wants everything; costs cap the pool monotonically
    assert n_opts[0] == N_MAX
    assert all(b <= a for a, b in zip(n_opts, n_opts[1:]))
    assert n_opts[-1] < N_MAX
    # using all seven despite heavy comm costs real throughput
    assert rows[-1][4] > 5.0
