"""The plan-serving daemon under concurrent load — the service artifact.

Drives a live :class:`~repro.service.server.PlanServer` over its Unix
socket with 8 concurrent clients and ≥256 plan requests per phase:

* **cold** — every request is a distinct planning problem (unique
  ``supply_factor``), so each one misses the plan LRU and runs a real
  Algorithm-1 + run-time simulation on the shared executor;
* **warm** — the identical request set again: every request is answered
  straight from the plan cache in the connection thread, no dispatch;
* **workers** — the cold phase repeated on a fresh daemon backed by a
  4-process :class:`~repro.analysis.batch.CellExecutor` instead of the
  in-process executor, for the 1-vs-N scaling row.

Writes ``BENCH_service.json`` next to the repo root with throughput and
p50/p95/p99 latency per phase, and asserts the service contract: zero
dropped connections or error responses, every plan served, and warm-cache
p95 latency at least 10× better than cold.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path

from conftest import emit

from repro.core.allocation import clear_allocation_cache
from repro.service.client import PlanClient
from repro.service.metrics import percentile
from repro.service.server import PlanServer, ServerConfig

N_CLIENTS = 8
N_PERIODS = 6  # heavier cells: the cold path must do real planning work
PROCESS_WORKERS = 4
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def build_requests() -> list[dict]:
    """256 distinct planning problems (unique supply factors per scenario)."""
    return [
        {
            "scenario": scenario,
            "policy": "proposed",
            "n_periods": N_PERIODS,
            "supply_factor": round(0.80 + 0.001 * k, 3),
        }
        for scenario in ("scenario1", "scenario2")
        for k in range(128)
    ]


def drive(endpoint: str, requests: list[dict], n_clients: int):
    """Fan the request list over ``n_clients`` concurrent connections.

    Returns (per-request latencies in seconds, errors, wall seconds).
    Every client opens one connection and keeps it for its whole shard —
    a dropped connection surfaces as an error, never silently.
    """
    latencies: list[float] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def worker(shard: list[dict]) -> None:
        try:
            with PlanClient(endpoint, timeout=120.0) as client:
                for req in shard:
                    t0 = time.perf_counter()
                    result = client.plan(
                        req["scenario"],
                        policy=req["policy"],
                        n_periods=req["n_periods"],
                        supply_factor=req["supply_factor"],
                    )
                    dt = time.perf_counter() - t0
                    assert result["scenario"] == req["scenario"]
                    with lock:
                        latencies.append(dt)
        except Exception as exc:  # noqa: BLE001 - the bench reports, not hides
            with lock:
                errors.append(exc)

    shards = [requests[i::n_clients] for i in range(n_clients)]
    threads = [threading.Thread(target=worker, args=(s,)) for s in shards]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, errors, time.perf_counter() - t_start


def _phase_stats(latencies: list[float], wall_s: float) -> dict:
    return {
        "n_requests": len(latencies),
        "wall_s": wall_s,
        "throughput_rps": len(latencies) / wall_s if wall_s > 0 else 0.0,
        "p50_ms": percentile(latencies, 50.0) * 1e3,
        "p95_ms": percentile(latencies, 95.0) * 1e3,
        "p99_ms": percentile(latencies, 99.0) * 1e3,
        "mean_ms": sum(latencies) / len(latencies) * 1e3 if latencies else 0.0,
    }


def _serve(tmp: str, tag: str, n_workers: int) -> PlanServer:
    clear_allocation_cache()  # no cross-phase warm-start: cold means cold
    server = PlanServer(
        ServerConfig(
            address=f"unix:{tmp}/bench-{tag}.sock",
            n_workers=n_workers,
            metrics_interval_s=0.0,
            default_deadline_s=None,
        )
    )
    server.start()
    return server


def bench_service():
    requests = build_requests()
    report: dict = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "n_clients": N_CLIENTS,
        "n_periods": N_PERIODS,
        "n_distinct_plans": len(requests),
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        # ---- in-process executor: cold then warm over one daemon --------
        server = _serve(tmp, "thread", n_workers=0)
        try:
            cold_lat, cold_err, cold_wall = drive(server.endpoint, requests, N_CLIENTS)
            warm_lat, warm_err, warm_wall = drive(server.endpoint, requests, N_CLIENTS)
            with PlanClient(server.endpoint, timeout=10.0) as status_client:
                status = status_client.status()
        finally:
            server.stop()
        # ---- 4-process executor: the same cold load, fresh daemon -------
        worker_server = _serve(tmp, "procs", n_workers=PROCESS_WORKERS)
        try:
            proc_lat, proc_err, proc_wall = drive(
                worker_server.endpoint, requests, N_CLIENTS
            )
        finally:
            worker_server.stop()

    errors = cold_err + warm_err + proc_err
    report["cold"] = _phase_stats(cold_lat, cold_wall)
    report["warm"] = _phase_stats(warm_lat, warm_wall)
    report["workers"] = {
        "1 (in-process)": {"wall_s": cold_wall,
                           "throughput_rps": len(cold_lat) / cold_wall},
        f"{PROCESS_WORKERS} (processes)": {"wall_s": proc_wall,
                                           "throughput_rps": len(proc_lat) / proc_wall},
    }
    report["warm_vs_cold_p95"] = report["cold"]["p95_ms"] / report["warm"]["p95_ms"]
    report["plan_cache"] = status["plan_cache"]
    report["dropped_connections"] = len(errors)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    emit(
        "Plan service — {n} distinct plans, {c} concurrent clients\n"
        "  cold:  {cw:.3f} s · {ct:.0f} req/s · "
        "p50 {c50:.2f} / p95 {c95:.2f} / p99 {c99:.2f} ms\n"
        "  warm:  {ww:.3f} s · {wt:.0f} req/s · "
        "p50 {w50:.2f} / p95 {w95:.2f} / p99 {w99:.2f} ms\n"
        "  {pw} process workers: {pws:.3f} s (vs {cw:.3f} s in-process)\n"
        "  warm p95 speedup: {x:.1f}x · cache hits {h} · dropped {d}\n"
        "  report: {path}".format(
            n=len(requests),
            c=N_CLIENTS,
            cw=report["cold"]["wall_s"],
            ct=report["cold"]["throughput_rps"],
            c50=report["cold"]["p50_ms"],
            c95=report["cold"]["p95_ms"],
            c99=report["cold"]["p99_ms"],
            ww=report["warm"]["wall_s"],
            wt=report["warm"]["throughput_rps"],
            w50=report["warm"]["p50_ms"],
            w95=report["warm"]["p95_ms"],
            w99=report["warm"]["p99_ms"],
            pw=PROCESS_WORKERS,
            pws=proc_wall,
            x=report["warm_vs_cold_p95"],
            h=report["plan_cache"]["hits"],
            d=len(errors),
            path=REPORT_PATH.name,
        )
    )

    assert not errors, f"dropped connections / error responses: {errors[:3]}"
    assert len(cold_lat) == len(requests), "cold phase lost requests"
    assert len(warm_lat) == len(requests), "warm phase lost requests"
    assert report["plan_cache"]["hits"] >= len(requests), "warm phase missed the cache"
    assert report["warm_vs_cold_p95"] >= 10.0, (
        f"warm p95 only {report['warm_vs_cold_p95']:.1f}x better than cold "
        f"({report['cold']['p95_ms']:.2f} ms -> {report['warm']['p95_ms']:.2f} ms)"
    )
