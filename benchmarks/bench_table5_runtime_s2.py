"""Table 5 — Dynamic update of the power allocation, scenario II.

Same structure as Table 3 on the staircase-supply scenario.  Also
exercises the Section 4.3 case the paper's rows demonstrate: whenever the
used or supplied energy deviates from the estimate, the window is
recomputed — checked here by perturbing the supply 10% low and asserting
the reallocation shrinks future budgets.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.tables import runtime_table


def bench_table5_runtime_scenario2(benchmark, sc2, frontier):
    result = benchmark(runtime_table, sc2, n_periods=2, frontier=frontier)
    emit(result.text())
    assert len(result.rows) == 24
    for row in result.rows:
        assert sc2.spec.c_min - 1e-9 <= row.battery_level <= sc2.spec.c_max + 1e-9

    # Section 4.3 sanity: a systematically weaker supply shrinks the plan
    starved = runtime_table(sc2, n_periods=2, supply_factor=0.9, frontier=frontier)
    nominal_tail = sum(r.pinit for r in result.rows[12:])
    starved_tail = sum(r.pinit for r in starved.rows[12:])
    assert starved_tail < nominal_tail
