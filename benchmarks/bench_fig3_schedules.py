"""Figure 3 — Charging and use schedule for scenario I.

The square-wave orbit: 2.36 W of charge for the first half period, zero
afterwards, against the 12-slot use schedule oscillating between 0.32 and
2.03 W.  Rendered as an ASCII step plot plus the CSV series; the bench
also overlays the Algorithm 1 allocation.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.figures import figure3


def bench_figure3(benchmark):
    fig = benchmark(figure3, include_allocation=True)
    emit(fig.text())
    emit(fig.csv())
    np.testing.assert_allclose(fig.series["Charging schedule"][:6], 2.36)
    np.testing.assert_allclose(fig.series["Charging schedule"][6:], 0.0)
    use = fig.series["Use schedule"]
    assert use.min() == 0.32 and use.max() == 2.03
    # the allocation stays within the worker pool's feasible band
    alloc = fig.series["Allocated (Alg. 1)"]
    assert np.all(alloc >= 0.0) and np.all(alloc <= 2.7524 + 1e-9)
