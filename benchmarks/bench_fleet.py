"""The fleet gateway under concurrent load and mid-run replica loss.

Drives a live :class:`~repro.fleet.gateway.PlanGateway` fronting real
``python -m repro serve`` subprocesses with 8 concurrent clients:

* **single** — one backend behind the gateway: the routing/proxy
  overhead baseline;
* **fleet3** — the same cold request set over three backends: rendezvous
  routing spreads distinct plans across replicas;
* **chaos** — three fresh backends, and one of them is SIGKILLed after a
  quarter of the requests have completed.  The serving contract under
  test: **every request still succeeds** — transport errors fail over,
  the dead replica's breaker opens, and the survivors absorb its keys.

Writes ``BENCH_fleet.json`` next to the repo root with success rate,
p50/p95/p99 latency per phase, and the hedge fire/win counts, and
asserts a 100% success rate with one of three backends killed mid-run.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path

from conftest import emit

from repro.fleet.gateway import GatewayConfig, PlanGateway
from repro.fleet.launcher import FleetLauncher
from repro.service.client import PlanClient
from repro.service.metrics import percentile

N_CLIENTS = 8
N_PERIODS = 4
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def build_requests() -> "list[dict]":
    """128 distinct planning problems (unique supply factors per scenario)."""
    return [
        {
            "scenario": scenario,
            "policy": "proposed",
            "n_periods": N_PERIODS,
            "supply_factor": round(0.85 + 0.001 * k, 3),
        }
        for scenario in ("scenario1", "scenario2")
        for k in range(64)
    ]


def drive(endpoint, requests, n_clients, *, kill_after=None, on_kill=None):
    """Fan the request list over ``n_clients`` concurrent connections.

    With ``kill_after``/``on_kill``, fires ``on_kill()`` once, from
    whichever worker completes request number ``kill_after`` — the
    mid-run fault injection.  Returns (latencies, errors, wall_s).
    """
    latencies: "list[float]" = []
    errors: "list[Exception]" = []
    lock = threading.Lock()
    killed = threading.Event()

    def worker(shard: "list[dict]") -> None:
        try:
            with PlanClient(endpoint, timeout=120.0) as client:
                for req in shard:
                    t0 = time.perf_counter()
                    result = client.plan(
                        req["scenario"],
                        policy=req["policy"],
                        n_periods=req["n_periods"],
                        supply_factor=req["supply_factor"],
                    )
                    dt = time.perf_counter() - t0
                    assert result["scenario"] == req["scenario"]
                    fire = False
                    with lock:
                        latencies.append(dt)
                        if (
                            kill_after is not None
                            and len(latencies) >= kill_after
                            and not killed.is_set()
                        ):
                            killed.set()
                            fire = True
                    if fire and on_kill is not None:
                        on_kill()
        except Exception as exc:  # noqa: BLE001 - the bench reports, not hides
            with lock:
                errors.append(exc)

    shards = [requests[i::n_clients] for i in range(n_clients)]
    threads = [threading.Thread(target=worker, args=(s,)) for s in shards]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return latencies, errors, time.perf_counter() - t_start


def _phase_stats(latencies, errors, n_requests, wall_s) -> dict:
    return {
        "n_requests": n_requests,
        "n_succeeded": len(latencies),
        "n_failed": len(errors),
        "success_rate": len(latencies) / n_requests if n_requests else 0.0,
        "wall_s": wall_s,
        "throughput_rps": len(latencies) / wall_s if wall_s > 0 else 0.0,
        "p50_ms": percentile(latencies, 50.0) * 1e3,
        "p95_ms": percentile(latencies, 95.0) * 1e3,
        "p99_ms": percentile(latencies, 99.0) * 1e3,
    }


def _run_phase(tmp, tag, n_backends, requests, *, kill_index=None):
    """One gateway + N fresh subprocess backends; optionally SIGKILL one
    backend after a quarter of the requests have landed."""
    socket_dir = Path(tmp) / tag
    socket_dir.mkdir()
    with FleetLauncher(n_backends=n_backends, socket_dir=socket_dir) as launcher:
        gateway = PlanGateway(
            GatewayConfig(
                address=f"unix:{socket_dir}/gateway.sock",
                backends=launcher.addresses,
                request_timeout_s=120.0,
                probe_interval_s=0.5,
            )
        )
        gateway.start()
        try:
            on_kill = None
            kill_after = None
            if kill_index is not None:
                kill_after = len(requests) // 4
                on_kill = lambda: launcher.kill(kill_index)  # noqa: E731
            latencies, errors, wall_s = drive(
                gateway.endpoint, requests, N_CLIENTS,
                kill_after=kill_after, on_kill=on_kill,
            )
            stats = _phase_stats(latencies, errors, len(requests), wall_s)
            stats["hedges_fired"] = gateway.metrics.counter("hedges_fired")
            stats["hedge_wins"] = gateway.metrics.counter("hedge_wins")
            stats["transport_errors_absorbed"] = gateway.metrics.counter(
                "forward_transport_errors"
            )
            return stats, errors
        finally:
            gateway.stop()


def bench_fleet():
    requests = build_requests()
    report: dict = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "n_clients": N_CLIENTS,
        "n_periods": N_PERIODS,
        "n_distinct_plans": len(requests),
    }
    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as tmp:
        report["single"], single_err = _run_phase(tmp, "single", 1, requests)
        report["fleet3"], fleet_err = _run_phase(tmp, "fleet3", 3, requests)
        report["chaos"], chaos_err = _run_phase(
            tmp, "chaos", 3, requests, kill_index=0
        )

    hedges = sum(report[p]["hedges_fired"] for p in ("single", "fleet3", "chaos"))
    wins = sum(report[p]["hedge_wins"] for p in ("single", "fleet3", "chaos"))
    report["hedge"] = {
        "fired": hedges,
        "wins": wins,
        "win_rate": wins / hedges if hedges else None,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    emit(
        "Fleet gateway — {n} distinct plans, {c} concurrent clients\n"
        "  single (1 backend): {sw:.3f} s · {st:.0f} req/s · "
        "p50 {s50:.2f} / p95 {s95:.2f} / p99 {s99:.2f} ms\n"
        "  fleet (3 backends): {fw:.3f} s · {ft:.0f} req/s · "
        "p50 {f50:.2f} / p95 {f95:.2f} / p99 {f99:.2f} ms\n"
        "  chaos (1 of 3 SIGKILLed mid-run): success {cs:.1%} · "
        "{ct:.0f} req/s · p99 {c99:.2f} ms · "
        "{ce} transport errors absorbed\n"
        "  hedges fired {h} · won {hw}\n"
        "  report: {path}".format(
            n=len(requests),
            c=N_CLIENTS,
            sw=report["single"]["wall_s"],
            st=report["single"]["throughput_rps"],
            s50=report["single"]["p50_ms"],
            s95=report["single"]["p95_ms"],
            s99=report["single"]["p99_ms"],
            fw=report["fleet3"]["wall_s"],
            ft=report["fleet3"]["throughput_rps"],
            f50=report["fleet3"]["p50_ms"],
            f95=report["fleet3"]["p95_ms"],
            f99=report["fleet3"]["p99_ms"],
            cs=report["chaos"]["success_rate"],
            ct=report["chaos"]["throughput_rps"],
            c99=report["chaos"]["p99_ms"],
            ce=report["chaos"]["transport_errors_absorbed"],
            h=hedges,
            hw=wins,
            path=REPORT_PATH.name,
        )
    )

    assert not single_err, f"single-backend phase failed requests: {single_err[:3]}"
    assert not fleet_err, f"three-backend phase failed requests: {fleet_err[:3]}"
    assert not chaos_err, (
        f"requests failed while 2 of 3 replicas stayed healthy: {chaos_err[:3]}"
    )
    assert report["chaos"]["success_rate"] == 1.0, report["chaos"]
    assert report["chaos"]["n_succeeded"] == len(requests)
