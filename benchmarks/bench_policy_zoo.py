"""Policy zoo — proposed vs. every baseline on the event-driven simulator.

Beyond Table 1's two-policy energy accounting, this bench runs the full
queueing simulation (arrivals, throughput, backlog) for five policies on
scenario I with a FORTE-like event stream.  Expected ordering:

* waste:       proposed ≪ static (and, notably, ≤ the *open-loop* oracle:
  the clairvoyant plan replayed without Algorithm 3 feedback accumulates
  quantization drift the proposed policy's run-time update cancels)
* undersupply: proposed ≈ oracle ≈ 0 ≪ always-on
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import format_table
from repro.baselines.always_on import AlwaysOnPolicy
from repro.baselines.oracle import OraclePolicy
from repro.baselines.static import StaticPolicy
from repro.baselines.timeout import TimeoutPolicy
from repro.core.manager import DynamicPowerManager
from repro.models.events import constant_rate
from repro.models.sources import ScheduledSource
from repro.sim.controller import ManagerPolicy
from repro.sim.system import MultiprocessorSystem
from repro.scenarios.paper import pama_performance_model
from repro.workloads.generator import poisson_trace

import numpy as np

N_PERIODS = 4


def run_zoo(sc1, frontier):
    grid = sc1.grid
    rate = constant_rate(grid, 0.4)
    events = poisson_trace(rate, n_periods=N_PERIODS, seed=11)
    system = MultiprocessorSystem(
        grid,
        ScheduledSource(sc1.charging),
        sc1.spec,
        pama_performance_model(),
        events,
    )
    manager = DynamicPowerManager(
        sc1.charging, sc1.event_demand, frontier=frontier, spec=sc1.spec
    )
    charging_trace = np.tile(sc1.charging.values, N_PERIODS)
    demand_trace = np.tile(sc1.event_demand.values, N_PERIODS)
    policies = [
        ManagerPolicy(manager),
        StaticPolicy(frontier),
        TimeoutPolicy(frontier, timeout_slots=1),
        AlwaysOnPolicy(frontier),
        OraclePolicy(grid, charging_trace, demand_trace, sc1.spec, frontier),
    ]
    rows = []
    for policy in policies:
        summary = system.run(policy).summary()
        rows.append(
            (
                policy.name,
                summary.wasted_energy,
                summary.undersupplied_energy,
                summary.energy_utilization,
                summary.service_ratio,
                summary.final_backlog,
            )
        )
    return rows


def bench_policy_zoo(benchmark, sc1, frontier):
    rows = benchmark(run_zoo, sc1, frontier)
    emit(
        format_table(
            ["policy", "wasted (J)", "under (J)", "utilization", "service", "backlog"],
            rows,
            title=f"Policy zoo — scenario I, {N_PERIODS} periods, Poisson arrivals",
        )
    )
    by_name = {r[0]: r for r in rows}
    # the proposed policy wastes far less than the plan-free baselines
    assert by_name["proposed"][1] < by_name["static"][1] / 2
    # and keeps battery-level undersupply below always-on
    assert by_name["proposed"][2] < by_name["always-on"][2]
    # both planners fully serve their own plans (no battery undersupply)
    assert by_name["oracle"][2] == 0.0
    assert by_name["proposed"][2] == 0.0
    # closed-loop beats the open-loop clairvoyant plan on waste: the
    # oracle has no Algorithm 3 feedback, so frontier quantization drift
    # overfills its battery
    assert by_name["proposed"][1] <= by_name["oracle"][1] + 1.0
