"""Ablation — battery round-trip efficiency (extension).

The paper assumes a lossless battery.  Real cells lose 5–25% per round
trip, which changes the *planning calculus*: energy routed through the
battery is worth less than energy consumed as it arrives, so a lossy
system should shift even more burn into the charging window.  This bench
derates the efficiency and compares proposed vs. static on scenario I.
Shape: both policies lose delivered energy as efficiency falls, but the
proposed plan — which minimizes battery round-trips by following the
supply — degrades more slowly than static (whose whole strategy is
banking energy for eclipse).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_knob
from repro.models.battery import BatterySpec
from repro.scenarios.paper import C_MAX_J, C_MIN_J, PaperScenario

EFFICIENCIES = [1.0, 0.95, 0.85, 0.7]


def with_efficiency(sc: PaperScenario, eta: float) -> PaperScenario:
    spec = BatterySpec(
        c_max=C_MAX_J,
        c_min=C_MIN_J,
        initial=C_MIN_J,
        charge_efficiency=eta,
        discharge_efficiency=eta,
    )
    return PaperScenario(
        name=sc.name,
        charging=sc.charging,
        event_demand=sc.event_demand,
        spec=spec,
    )


def sweep(sc1, frontier):
    cells = sweep_knob(sc1, frontier, EFFICIENCIES, with_efficiency, n_periods=2)
    by_cell = {(c.knob, c.policy): c.result for c in cells}
    rows = []
    for eta in EFFICIENCIES:
        managed = by_cell[(eta, "proposed")]
        static = by_cell[(eta, "static")]
        rows.append(
            (
                eta,
                managed.delivered,
                static.delivered,
                managed.undersupplied,
                static.undersupplied,
            )
        )
    return rows


def bench_ablation_efficiency(benchmark, sc1, frontier):
    rows = benchmark(sweep, sc1, frontier)
    emit(
        format_table(
            [
                "round-trip η",
                "proposed delivered (J)",
                "static delivered (J)",
                "proposed under (J)",
                "static under (J)",
            ],
            rows,
            title="Ablation — battery round-trip efficiency (scenario I)",
        )
    )
    # delivered energy degrades monotonically for static
    static_delivered = [r[2] for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(static_delivered, static_delivered[1:]))
    # the proposed plan loses less delivered energy than static between
    # ideal and the worst efficiency
    proposed_drop = rows[0][1] - rows[-1][1]
    static_drop = rows[0][2] - rows[-1][2]
    assert proposed_drop <= static_drop + 1e-9
