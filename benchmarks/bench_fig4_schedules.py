"""Figure 4 — Charging and use schedule for scenario II.

The staircase orbit: supply peaks at 3.54 W early, decays through partial
shade, and the demand bursts to 3.54 W in eclipse — the mismatch the
allocation must bridge through the battery.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.figures import figure4


def bench_figure4(benchmark):
    fig = benchmark(figure4, include_allocation=True)
    emit(fig.text())
    emit(fig.csv())
    charging = fig.series["Charging schedule"]
    use = fig.series["Use schedule"]
    assert charging.max() == 3.54
    assert use.max() == 3.54
    # the demand peak falls where charging is low (the figure's whole point)
    peak = int(np.argmax(use))
    assert charging[peak] < charging.max() / 3
