"""Ablation — battery capacity sweep.

How much battery does the proposed algorithm need?  Sweeps C_max (holding
C_min and the scenarios fixed) and reports wasted energy for proposed vs.
static.  Shape: static's waste grows as the battery shrinks (it banks
blindly); the proposed allocation adapts its plan to the window and keeps
waste near zero until the battery is too small for feasibility at all.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_knob
from repro.models.battery import BatterySpec
from repro.scenarios.paper import C_MAX_J, C_MIN_J, PaperScenario

CAPACITY_FACTORS = [0.25, 0.5, 1.0, 2.0, 4.0]


def with_capacity(sc: PaperScenario, factor: float) -> PaperScenario:
    spec = BatterySpec(
        c_max=C_MIN_J + (C_MAX_J - C_MIN_J) * factor,
        c_min=C_MIN_J,
        initial=C_MIN_J,
    )
    return PaperScenario(
        name=sc.name,
        charging=sc.charging,
        event_demand=sc.event_demand,
        spec=spec,
    )


def sweep(sc1, frontier):
    cells = sweep_knob(sc1, frontier, CAPACITY_FACTORS, with_capacity, n_periods=2)
    by_cell = {(c.knob, c.policy): c.result for c in cells}
    rows = []
    for factor in CAPACITY_FACTORS:
        managed = by_cell[(factor, "proposed")]
        static = by_cell[(factor, "static")]
        rows.append(
            (
                round(C_MIN_J + (C_MAX_J - C_MIN_J) * factor, 2),
                managed.wasted,
                static.wasted,
                managed.undersupplied,
                static.undersupplied,
            )
        )
    return rows


def bench_ablation_battery(benchmark, sc1, frontier):
    rows = benchmark(sweep, sc1, frontier)
    emit(
        format_table(
            [
                "C_max (J)",
                "proposed wasted (J)",
                "static wasted (J)",
                "proposed under (J)",
                "static under (J)",
            ],
            rows,
            title="Ablation — battery capacity sweep (scenario I, 2 periods)",
        )
    )
    # the proposed plan beats static at every capacity
    for _, mw, sw, mu, su in rows:
        assert mw <= sw + 1e-9
    # static's waste shrinks as the battery grows
    static_w = [r[2] for r in rows]
    assert static_w[-1] < static_w[0]
