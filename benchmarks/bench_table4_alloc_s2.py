"""Table 4 — Initial power allocation computation, scenario II.

Scenario II front-loads a charging surge (3.24/3.54 W for four slots)
against a demand burst in eclipse; the allocation must raise the early
burn toward the pool ceiling (the paper's converged row reaches 2.73 W of
the 2.75 W maximum) and cut the eclipse burst proportionally, ending with
the trajectory clamped in [0.098, 3.54] W·τ.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.analysis.tables import allocation_table
from repro.scenarios.paper import POWER_QUANTUM_W


def bench_table4_allocation_scenario2(benchmark, sc2):
    result = benchmark(allocation_table, sc2)
    emit(result.text())
    assert result.feasible
    paper_iteration1 = [0.59, 0.88, 0.88, 0.59, 3.54, 3.54,
                        2.95, 0.00, 0.59, 1.77, 2.95, 2.36]
    np.testing.assert_allclose(result.pinit_rows[0], paper_iteration1, atol=0.05)
    final_plan = np.asarray(result.pinit_rows[-1])
    ceiling = 7 * 4 * POWER_QUANTUM_W
    # early burn pushed to (near) the pool ceiling, like the paper's 2.73 W
    assert final_plan[:4].max() >= 0.85 * ceiling
    final_traj = np.asarray(result.integration_rows[-1])
    assert final_traj.max() <= 3.54 + 0.02
    assert final_traj.min() >= 0.098 - 0.02
