"""What-if — voltage scaling on PAMA (the paper's stated future work).

PAMA runs at a fixed 3.3 V; the paper's Section 6 plans voltage scaling.
This bench builds a hypothetical DVS-enabled PAMA — same chips, but the
supply can drop to 1.8 V with a linear g(v) that still reaches 80 MHz at
3.3 V — and compares the operating frontiers: energy per unit performance
at each frequency, and the Eq. 18 optimal operating points.

Shape: at the low frequencies the paper's power quantum structure makes
cheap, DVS slashes power quadratically — 20 MHz at ~1.97 V costs ~3×
less than at 3.3 V — so the DVS frontier dominates the fixed frontier
at every performance level below the flat-out point.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import format_table
from repro.core.pareto import OperatingFrontier
from repro.models.performance import PerformanceModel
from repro.models.voltage import LinearVFMap
from repro.scenarios.paper import (
    FFT_TIME_20MHZ_S,
    FREQUENCIES_HZ,
    MHZ,
    N_WORKERS,
    SERIAL_FRACTION,
    pama_performance_model,
    pama_power_model,
)


def dvs_models():
    """A hypothetical DVS PAMA: 1.8–3.3 V, g linear, g(3.3) = 80 MHz."""
    # slope chosen so 3.3 V sustains 80 MHz above a 0.9 V threshold
    vf = LinearVFMap(v_min=1.8, v_max=3.3, slope=80e6 / (3.3 - 0.9), v_threshold=0.9)
    perf = PerformanceModel(
        t_total=FFT_TIME_20MHZ_S,
        t_serial=SERIAL_FRACTION * FFT_TIME_20MHZ_S,
        f_ref=20 * MHZ,
        vf_map=vf,
    )
    return perf, pama_power_model(include_standby_floor=False)


def build_comparison():
    fixed_frontier = OperatingFrontier.build(
        N_WORKERS, FREQUENCIES_HZ, pama_performance_model(),
        pama_power_model(include_standby_floor=False),
    )
    dvs_perf, power = dvs_models()
    dvs_frontier = OperatingFrontier.build(
        N_WORKERS, FREQUENCIES_HZ, dvs_perf, power
    )
    rows = []
    for fp in fixed_frontier.points:
        if fp.n == 0:
            continue
        # cheapest DVS point matching this performance
        dp = dvs_frontier.cheapest_with_perf(fp.perf)
        if dp is None:
            continue
        rows.append(
            (
                fp.n,
                fp.f / MHZ,
                fp.power,
                dp.n,
                dp.f / MHZ,
                round(dp.v, 2),
                dp.power,
                fp.power / dp.power,
            )
        )
    return rows


def bench_dvs_whatif(benchmark):
    rows = benchmark(build_comparison)
    emit(
        format_table(
            [
                "n (3.3V)", "f MHz", "power W",
                "n (DVS)", "f MHz", "v V", "power W", "saving x",
            ],
            rows,
            title="What-if — DVS-enabled PAMA vs. the fixed 3.3 V board "
            "(equal-performance operating points)",
        )
    )
    savings = [r[7] for r in rows]
    # DVS never loses, and wins big at the low-frequency points
    assert all(s >= 1.0 - 1e-9 for s in savings)
    assert max(savings) > 2.0
    # the flat-out point (everything at f_max, v_max) cannot be improved
    assert savings[-1] == min(savings)
