"""Generalization sweep — proposed vs. static over the scenario library.

The paper evaluates two hand-picked scenarios; this bench replays the
Table 1 comparison over the extended library (eclipse orbit, commute
traffic, burst watch, deep discharge) to show the result is not an
artifact of those inputs.  Shape: across every scenario the proposed
plan's combined loss (waste + undersupply) is below static's.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.batch import CellSpec, run_grid
from repro.analysis.report import format_table
from repro.scenarios.library import library_scenarios
from repro.scenarios.paper import paper_scenarios


def run_sweep(frontier):
    scenarios = list(paper_scenarios()) + list(library_scenarios())
    cells = [
        CellSpec(scenario=sc, policy=policy, n_periods=2)
        for sc in scenarios
        for policy in ("proposed", "static")
    ]
    return run_grid(cells, frontier)


def bench_scenario_library(benchmark, frontier):
    report = benchmark(run_sweep, frontier)
    cells = report.cells
    emit(
        format_table(
            ["scenario", "policy", "wasted (J)", "undersupplied (J)", "utilization"],
            [
                (c.scenario, c.policy, c.result.wasted, c.result.undersupplied,
                 c.result.utilization)
                for c in cells
            ],
            title="Generalization — proposed vs. static across the scenario library",
        )
        + f"\ngrid wall {report.wall_s:.3f} s · allocation cache "
        f"{report.cache_hits} hits / {report.cache_misses} misses"
    )
    by_key = {(c.scenario, c.policy): c.result for c in cells}
    scenarios = {c.scenario for c in cells}
    for name in scenarios:
        proposed = by_key[(name, "proposed")]
        static = by_key[(name, "static")]
        combined_p = proposed.wasted + proposed.undersupplied
        combined_s = static.wasted + static.undersupplied
        assert combined_p < combined_s, name
        # and the plan's own demand is essentially always served
        assert proposed.undersupplied < 1.0, name
