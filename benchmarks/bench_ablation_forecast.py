"""Ablation — forecast adaptation (Section 2's "derived empirically").

The paper plans on schedules "derived theoretically or empirically" from
previous periods.  This bench compares three outer loops under a supply
source that *drifts* (panel output decays 5% per period):

* fixed       — plan once on the original forecast, Algorithm 3 only;
* last-period — replan each period on the previous period's recording;
* smoothed    — replan on an exponentially-weighted average (α = 0.5).

Shape: both adaptive loops keep undersupply near zero as the drift
compounds; the fixed plan's stale forecast forces growing shortfalls.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import format_table
from repro.core.forecast import (
    AdaptiveManager,
    ExponentialSmoothingEstimator,
    LastPeriodEstimator,
)
from repro.core.manager import DynamicPowerManager
from repro.models.battery import Battery

N_PERIODS = 6
DECAY_PER_PERIOD = 0.85


def supply_factor(period: int) -> float:
    return DECAY_PER_PERIOD ** (period + 1)


def run_fixed(sc1, frontier):
    manager = DynamicPowerManager(
        sc1.charging, sc1.event_demand, frontier=frontier, spec=sc1.spec
    )
    manager.start()
    battery = Battery(sc1.spec)
    tau = sc1.grid.tau
    n = sc1.grid.n_slots
    for k in range(N_PERIODS * n):
        point = manager.decide()
        supplied = sc1.charging[k % n] * supply_factor(k // n)
        step = battery.step(supplied, point.power, tau)
        manager.advance(used_power=step.drawn / tau, supplied_power=supplied)
    return battery


def run_adaptive(sc1, frontier, estimator):
    adaptive = AdaptiveManager(
        estimator, sc1.event_demand, frontier=frontier, spec=sc1.spec
    )
    battery = Battery(sc1.spec)
    tau = sc1.grid.tau
    n = sc1.grid.n_slots
    for k in range(N_PERIODS * n):
        point = adaptive.decide()
        supplied = sc1.charging[k % n] * supply_factor(k // n)
        step = battery.step(supplied, point.power, tau)
        adaptive.advance(used_power=step.drawn / tau, supplied_power=supplied)
    return battery


def full_comparison(sc1, frontier):
    rows = []
    batteries = {
        "fixed": run_fixed(sc1, frontier),
        "last-period": run_adaptive(
            sc1, frontier, LastPeriodEstimator(sc1.charging)
        ),
        "smoothed": run_adaptive(
            sc1, frontier, ExponentialSmoothingEstimator(sc1.charging, alpha=0.5)
        ),
    }
    for name, b in batteries.items():
        rows.append(
            (name, b.total_undersupplied, b.total_wasted, b.total_drawn)
        )
    return rows


def bench_ablation_forecast(benchmark, sc1, frontier):
    rows = benchmark(full_comparison, sc1, frontier)
    emit(
        format_table(
            ["outer loop", "undersupplied (J)", "wasted (J)", "delivered (J)"],
            rows,
            title=(
                "Ablation — forecast adaptation under 15%-per-period supply "
                f"decay ({N_PERIODS} periods, scenario I)"
            ),
        )
    )
    by_name = {r[0]: r for r in rows}
    # the fixed plan's stale forecast forces real shortfalls; the adaptive
    # loops replan onto the true supply and essentially eliminate them
    assert by_name["fixed"][1] > 5.0
    assert by_name["last-period"][1] < by_name["fixed"][1] / 5
    assert by_name["smoothed"][1] < by_name["fixed"][1]
