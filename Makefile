.PHONY: install test bench repro examples all

install:
	pip install -e ".[test]"

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

repro:
	python -m repro all
	python -m repro library

examples:
	@for ex in examples/*.py; do echo "== $$ex =="; python $$ex; done

all: test bench repro
